//! Race detection and log-invariant analysis for DeLorean recordings.
//!
//! Four passes, each usable on its own and aggregated by the
//! `delorean analyze` CLI subcommand into one [`AnalysisReport`]:
//!
//! 1. **Static footprint analysis** ([`footprint`]) — abstract
//!    interpretation over the workload's generated programs, computing
//!    per-thread may-read/may-write shared footprints without
//!    executing, and flagging unsynchronized conflicting access pairs
//!    with their program counters.
//! 2. **Chunk-granularity race detection** ([`races`]) — a replay
//!    through [`ReplayInspector`](delorean::inspect::ReplayInspector)
//!    that builds the chunk happens-before relation with vector
//!    clocks and reports conflicting chunk pairs whose order only the
//!    recorded commit log fixes, classified by what the mode pins down
//!    (PI log vs. predefined round-robin order).
//! 3. **Log lint** ([`lint`]) — structural invariant checks over raw
//!    `.dlrn` streams (framing, checksums, CS-size sanity, footprint
//!    shape, DMA payload ranges, watermark and trailer consistency)
//!    as typed [`Diagnostic`]s with severities, never panics. Also
//!    validates `.dlrnx` checkpoint-index sidecars — schema, frame
//!    checksums, and the fingerprint binding to their source stream
//!    ([`validate_checkpoint_index`]).
//! 4. **Dependence analysis** ([`deps`]) — the full chunk dependence
//!    DAG over a recording, built twice (exact line-granular
//!    footprints vs. the hardware's aliasing-prone 2-Kbit signatures),
//!    with transitive reduction, critical path, an
//!    available-parallelism profile, a hard check that the recorded
//!    commit order is a linear extension of the exact DAG, and a
//!    versioned, checksummed replay-parallelism certificate bound to
//!    the source stream by fingerprint.
//!
//! Only [`Severity::Error`] findings indicate a broken artifact (and
//! drive the CLI's exit code); races are reported as warnings because
//! a racy-but-intact recording is a legitimate object of study — the
//! point of deterministic replay is to capture exactly such runs.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod deps;
pub mod footprint;
pub mod lint;
pub mod races;
pub mod report;

pub use deps::{
    analyze_deps, certificate_hints, deps_from_bytes, fingerprint, validate_certificate,
    CertSummary, DepNode, DepsOptions, DepsReport, CERT_SCHEMA_VERSION, PROFILE_CORES,
};
pub use footprint::{
    analyze_workload, find_static_races, AbsVal, AccessSite, FootprintReport, StaticOptions,
};
pub use lint::{
    lint_bytes, lint_strata, lint_stream, validate_checkpoint_index, IndexSummary, LintReport,
};
pub use races::{detect_races, ChunkRace, Detector, RaceOptions, RaceReport};
pub use report::{AnalysisReport, Diagnostic, Severity};
