//! `.dlrn` log lint (pass 3).
//!
//! Walks a stream through [`SegmentWalker`] — which checksum-verifies
//! and decodes every frame — and layers structural invariant checks on
//! top: per-event field sanity (CS sizes, footprint shape, DMA payload
//! ranges), cross-segment counter monotonicity, and trailer totals
//! against the counted events. Every violation becomes a typed
//! [`Diagnostic`] carrying the [`StreamPosition`] it was detected at;
//! a malformed stream never panics the pass.
//!
//! The walk holds one segment in memory at a time, so the pass runs in
//! O(segment) space regardless of log length.

use crate::report::{diagnostics_json, Diagnostic};
use delorean::recover::SalvageReport;
use delorean::stratify::StratifiedPiLog;
use delorean::stream::{EventSegment, LogEvent, StreamMeta, StreamTrailer};
use delorean::{SegmentWalker, StreamPosition, WalkedSegment};
use delorean_chunk::{ArbiterConfig, Committer};
use delorean_isa::layout::{AddressMap, DMA_WORDS};
use std::io::Read;

/// Output of the log lint pass.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Event segments decoded.
    pub segments: u64,
    /// Commit events decoded.
    pub events: u64,
    /// Of those, DMA commits.
    pub dma_events: u64,
    /// Whether a trailer was reached.
    pub trailer_seen: bool,
    /// Findings.
    pub diagnostics: Vec<Diagnostic>,
    /// What a salvage pass would preserve, when the structural walk
    /// aborted early and a byte image was available (see
    /// [`lint_bytes`]).
    pub salvage: Option<SalvageReport>,
}

impl LintReport {
    pub(crate) fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"segments\":{},\"events\":{},\"dma_events\":{},\"trailer_seen\":{},\"diagnostics\":",
            self.segments, self.events, self.dma_events, self.trailer_seen
        ));
        diagnostics_json(&self.diagnostics, out);
        if let Some(s) = &self.salvage {
            out.push_str(",\"salvage\":");
            out.push_str(&s.to_json());
        }
        out.push('}');
    }
}

impl core::fmt::Display for LintReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "log lint: {} segment(s), {} event(s) ({} DMA), trailer {}",
            self.segments,
            self.events,
            self.dma_events,
            if self.trailer_seen {
                "present"
            } else {
                "missing"
            }
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        if let Some(s) = &self.salvage {
            for line in s.to_string().lines() {
                writeln!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}

/// Running state the per-event checks accumulate.
struct LintState {
    meta: StreamMeta,
    map: AddressMap,
    events: u64,
    dma_events: u64,
    interrupts: u64,
    chunk_counts: Vec<u64>,
    diagnostics: Vec<Diagnostic>,
}

impl LintState {
    fn new(meta: StreamMeta) -> Self {
        let map = AddressMap::new(meta.n_procs);
        let chunk_counts = match &meta.interval {
            Some(s) => s.chunks_done.clone(),
            None => vec![0; meta.n_procs as usize],
        };
        Self {
            meta,
            map,
            events: 0,
            dma_events: 0,
            interrupts: 0,
            chunk_counts,
            diagnostics: Vec::new(),
        }
    }

    fn check_segment(&mut self, seg: &EventSegment, pos: StreamPosition) {
        if seg.events.is_empty() {
            self.diagnostics.push(
                Diagnostic::warning("empty-segment", "event segment carries no events").at(pos),
            );
        }
        for (i, ev) in seg.events.iter().enumerate() {
            let gcc = self.events + 1;
            let at = StreamPosition {
                byte_offset: pos.byte_offset,
                segment: pos.segment,
                commit: gcc,
            };
            self.check_event(ev, i, at);
            self.events += 1;
        }
        // The decoder regenerates per-processor counters and verifies
        // them against the segment watermarks, so a mismatch here means
        // the lint's own model drifted — still worth surfacing.
        if seg.chunk_watermarks != self.chunk_counts {
            self.diagnostics.push(
                Diagnostic::error(
                    "chunk-watermark-drift",
                    format!(
                        "segment declares chunk watermarks {:?} but counted commits give {:?}",
                        seg.chunk_watermarks, self.chunk_counts
                    ),
                )
                .at(pos),
            );
        }
        if seg.commit_watermark != self.events {
            self.diagnostics.push(
                Diagnostic::error(
                    "commit-watermark-drift",
                    format!(
                        "segment declares commit watermark {} but {} event(s) were counted",
                        seg.commit_watermark, self.events
                    ),
                )
                .at(pos),
            );
        }
    }

    fn check_event(&mut self, ev: &LogEvent, index: usize, at: StreamPosition) {
        let pi = self.meta.mode.has_pi_log();
        match ev.committer {
            Committer::Proc(p) => {
                // Proc bounds are decoder-enforced; count for trailer
                // cross-checks.
                if let Some(c) = self.chunk_counts.get_mut(p as usize) {
                    *c += 1;
                }
                if !ev.dma_data.is_empty() {
                    self.diagnostics.push(
                        Diagnostic::error(
                            "dma-data-on-proc",
                            format!("processor {p} commit (event {index}) carries a DMA payload"),
                        )
                        .at(at),
                    );
                }
            }
            Committer::Dma => {
                self.dma_events += 1;
                if ev.dma_data.is_empty() {
                    self.diagnostics.push(
                        Diagnostic::warning(
                            "dma-empty",
                            format!("DMA commit (event {index}) carries no payload"),
                        )
                        .at(at),
                    );
                }
                let lo = self.map.dma_base();
                let hi = lo + DMA_WORDS;
                for &(addr, _) in &ev.dma_data {
                    if addr < lo || addr >= hi {
                        self.diagnostics.push(
                            Diagnostic::error(
                                "dma-range",
                                format!(
                                    "DMA payload address {addr:#x} outside the DMA window [{lo:#x}, {hi:#x})"
                                ),
                            )
                            .at(at),
                        );
                        break;
                    }
                }
                if ev.cs_size.is_some() {
                    self.diagnostics.push(
                        Diagnostic::error(
                            "cs-on-dma",
                            "DMA commit carries a CS log entry".to_string(),
                        )
                        .at(at),
                    );
                }
            }
        }
        if ev.interrupt.is_some() {
            self.interrupts += 1;
        }
        // Shard stamps must agree with the header's arbiter topology.
        // A *missing* stamp under a sharded header is fine: in-memory
        // round trips rebuild streams without stamps.
        match (self.meta.arbiter, ev.shard) {
            (ArbiterConfig::Global, Some(shard)) => {
                self.diagnostics.push(
                    Diagnostic::warning(
                        "arbiter-shard",
                        format!(
                            "event {index} in segment {} carries shard stamp {shard} but the header declares a global arbiter",
                            at.segment
                        ),
                    )
                    .at(at),
                );
            }
            (ArbiterConfig::Sharded { shards }, Some(shard)) if shard >= shards => {
                self.diagnostics.push(
                    Diagnostic::warning(
                        "arbiter-shard",
                        format!(
                            "event {index} in segment {} carries shard stamp {shard} outside the header's {shards}-shard topology",
                            at.segment
                        ),
                    )
                    .at(at),
                );
            }
            _ => {}
        }
        if let Some(size) = ev.cs_size {
            if size == 0 {
                self.diagnostics.push(
                    Diagnostic::error(
                        "cs-zero",
                        format!("CS log entry of size 0 (event {index}): a chunk cannot retire zero instructions"),
                    )
                    .at(at),
                );
            } else if size > self.meta.chunk_size {
                self.diagnostics.push(
                    Diagnostic::warning(
                        "cs-oversize",
                        format!(
                            "CS log entry of size {size} exceeds the standard chunk size {}: truncation only shrinks chunks",
                            self.meta.chunk_size
                        ),
                    )
                    .at(at),
                );
            }
        }
        if pi {
            if !ev.access_lines.windows(2).all(|w| w[0] < w[1]) {
                self.diagnostics.push(
                    Diagnostic::error(
                        "footprint-unsorted",
                        format!("accessed-line footprint of event {index} is not strictly sorted"),
                    )
                    .at(at),
                );
            }
            if !ev.write_lines.windows(2).all(|w| w[0] < w[1]) {
                self.diagnostics.push(
                    Diagnostic::error(
                        "footprint-unsorted",
                        format!("written-line footprint of event {index} is not strictly sorted"),
                    )
                    .at(at),
                );
            }
            for w in &ev.write_lines {
                if ev.access_lines.binary_search(w).is_err() {
                    self.diagnostics.push(
                        Diagnostic::warning(
                            "footprint-write-not-accessed",
                            format!(
                                "event {index} writes line {w} that its accessed-line footprint does not contain"
                            ),
                        )
                        .at(at),
                    );
                    break;
                }
            }
        } else if !ev.access_lines.is_empty() || !ev.write_lines.is_empty() {
            self.diagnostics.push(
                Diagnostic::error(
                    "footprint-without-pi",
                    format!(
                        "event {index} carries a footprint but mode {} logs none",
                        self.meta.mode
                    ),
                )
                .at(at),
            );
        }
    }

    fn check_trailer(&mut self, trailer: &StreamTrailer, at: StreamPosition) {
        let stats = &trailer.stats;
        if stats.total_commits != self.events {
            self.diagnostics.push(
                Diagnostic::error(
                    "trailer-commit-count",
                    format!(
                        "trailer reports {} total commits but the stream carries {} event(s)",
                        stats.total_commits, self.events
                    ),
                )
                .at(at),
            );
        }
        if stats.dma_commits != self.dma_events {
            self.diagnostics.push(
                Diagnostic::error(
                    "trailer-dma-count",
                    format!(
                        "trailer reports {} DMA commits but the stream carries {}",
                        stats.dma_commits, self.dma_events
                    ),
                )
                .at(at),
            );
        }
        if stats.interrupts != self.interrupts {
            self.diagnostics.push(
                Diagnostic::warning(
                    "trailer-interrupt-count",
                    format!(
                        "trailer reports {} interrupts but the stream logs {} interrupt deliveries",
                        stats.interrupts, self.interrupts
                    ),
                )
                .at(at),
            );
        }
        if stats.digest.committed_chunks != self.chunk_counts {
            self.diagnostics.push(
                Diagnostic::error(
                    "trailer-chunk-count",
                    format!(
                        "trailer digest reports per-processor chunks {:?} but counted commits give {:?}",
                        stats.digest.committed_chunks, self.chunk_counts
                    ),
                )
                .at(at),
            );
        }
    }
}

/// Lints a `.dlrn` byte stream.
///
/// Decode failures are reported as `stream-decode` [`Diagnostic`]s at
/// the position they surfaced, never as panics; the walk stops at the
/// first one (nothing after a framing error is trustworthy).
pub fn lint_stream<R: Read>(reader: R) -> LintReport {
    let mut walker = match SegmentWalker::open(reader) {
        Ok(w) => w,
        Err(e) => {
            return LintReport {
                segments: 0,
                events: 0,
                dma_events: 0,
                trailer_seen: false,
                diagnostics: vec![Diagnostic::error(
                    "stream-decode",
                    format!("stream header rejected: {e}"),
                )],
                salvage: None,
            };
        }
    };
    let mut state = LintState::new(walker.meta().clone());
    let mut segments = 0u64;
    let mut trailer_seen = false;
    loop {
        let pos = walker.position();
        match walker.next_segment() {
            Ok(WalkedSegment::Events(seg)) => {
                segments += 1;
                state.check_segment(&seg, pos);
            }
            Ok(WalkedSegment::Trailer(t)) => {
                trailer_seen = true;
                state.check_trailer(&t, pos);
            }
            Ok(WalkedSegment::End) => break,
            Err(e) => {
                state.diagnostics.push(
                    Diagnostic::error("stream-decode", format!("{}", e.error)).at(e.position),
                );
                break;
            }
        }
    }
    crate::report::sort_diagnostics(&mut state.diagnostics);
    LintReport {
        segments,
        events: state.events,
        dma_events: state.dma_events,
        trailer_seen,
        diagnostics: state.diagnostics,
        salvage: None,
    }
}

/// Lints a fully-buffered `.dlrn` image and, when the structural walk
/// aborted early or never reached the trailer, runs the salvage pass
/// of [`delorean::recover`] to report what a recovery would preserve.
///
/// Salvage findings are *warnings*, not errors: a quarantined range is
/// damage the recovery has already contained, and a lost commit range
/// is named so the operator knows exactly what replay cannot
/// reproduce. The structural diagnostic that triggered the salvage
/// (truncation, framing loss, missing trailer) keeps its severity, so
/// a damaged stream still fails `delorean analyze`.
pub fn lint_bytes(bytes: &[u8]) -> LintReport {
    let mut report = lint_stream(bytes);
    let broken =
        !report.trailer_seen || report.diagnostics.iter().any(|d| d.code == "stream-decode");
    if !broken {
        return report;
    }
    // Err means the header itself is unusable — the stream-decode
    // error already says so and there is nothing to salvage.
    if let Ok(s) = delorean::recover::salvage(bytes) {
        for q in &s.report.quarantined {
            report.diagnostics.push(
                Diagnostic::warning(
                    "salvage-quarantine",
                    format!(
                        "bytes {}..{} quarantined ({}); salvage resynchronizes after them",
                        q.byte_start, q.byte_end, q.reason
                    ),
                )
                .at(StreamPosition {
                    byte_offset: q.byte_start,
                    segment: 0,
                    commit: 0,
                }),
            );
        }
        for l in &s.report.lost {
            report.diagnostics.push(Diagnostic::warning(
                "salvage-lost",
                format!("commits {l} are unrecoverable; later regions resume from a checkpoint"),
            ));
        }
        report.salvage = Some(s.report);
        crate::report::sort_diagnostics(&mut report.diagnostics);
    }
    report
}

/// Summary of a validated `.dlrnx` checkpoint index.
#[derive(Debug, Clone)]
pub struct IndexSummary {
    /// Checkpoint entries in the index.
    pub entries: usize,
    /// Commit interval the index was built with.
    pub interval_k: u64,
    /// Total commits in the indexed recording.
    pub total_commits: u64,
    /// Source stream length the index is bound to, in bytes.
    pub source_bytes: u64,
    /// FNV-1a fingerprint of the bound source stream.
    pub fingerprint: u64,
}

/// Validates an encoded `.dlrnx` checkpoint index against its source
/// `.dlrn` byte image: decodes the sidecar (magic, schema version,
/// frame checksums, entry ordering) and binds it to the source by
/// length and full-stream fingerprint.
///
/// # Errors
///
/// Returns the first violation rendered as a string — a tampered or
/// source-mismatched index never degrades to a usable value, exactly
/// like [`validate_certificate`](crate::validate_certificate) for the
/// dependence certificate.
pub fn validate_checkpoint_index(encoded: &[u8], source: &[u8]) -> Result<IndexSummary, String> {
    let index = delorean::CheckpointIndex::from_bytes(encoded).map_err(|e| e.to_string())?;
    index.validate_against(source).map_err(|e| e.to_string())?;
    Ok(IndexSummary {
        entries: index.entries.len(),
        interval_k: index.interval_k,
        total_commits: index.total_commits,
        source_bytes: index.source_len,
        fingerprint: index.source_fnv,
    })
}

/// Lints a stratified PI log against the expected per-column chunk
/// totals (processors first, DMA last — the shape
/// [`Stratifier`](delorean::stratify::Stratifier) produces).
///
/// The strata are per-stratum *delta* counter vectors, so monotonicity
/// of the reconstructed absolute counters is structural; what can go
/// wrong is a delta that does not fit the declared counter width, an
/// empty stratum (wasted space), or column totals that disagree with
/// the log the strata claim to summarize.
pub fn lint_strata(log: &StratifiedPiLog, expected_totals: &[u64]) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let bits = log.counter_bits();
    let limit = if bits >= 32 {
        u64::from(u32::MAX)
    } else {
        (1u64 << bits) - 1
    };
    let mut totals = vec![0u64; expected_totals.len()];
    for (i, stratum) in log.strata().iter().enumerate() {
        if stratum.len() != expected_totals.len() {
            diagnostics.push(Diagnostic::error(
                "stratum-shape",
                format!(
                    "stratum {i} has {} column(s) but the machine has {}",
                    stratum.len(),
                    expected_totals.len()
                ),
            ));
            continue;
        }
        if stratum.iter().all(|&c| c == 0) {
            diagnostics.push(Diagnostic::warning(
                "stratum-empty",
                format!("stratum {i} is all-zero (wasted log space)"),
            ));
        }
        for (col, &delta) in stratum.iter().enumerate() {
            if u64::from(delta) > limit {
                diagnostics.push(Diagnostic::error(
                    "stratum-counter-overflow",
                    format!(
                        "stratum {i} column {col} delta {delta} does not fit the declared {bits}-bit counter"
                    ),
                ));
            }
            totals[col] += u64::from(delta);
        }
    }
    if totals != expected_totals {
        diagnostics.push(Diagnostic::error(
            "stratum-total-mismatch",
            format!(
                "stratified counters sum to {totals:?} but the log commits {expected_totals:?} chunks per column"
            ),
        ));
    }
    diagnostics
}

#[cfg(test)]
mod tests {
    // Test code may panic freely.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use crate::report::Severity;
    use delorean::stratify::Stratifier;

    #[test]
    fn checkpoint_index_validates_and_rejects_tampering() {
        let machine = delorean::Machine::builder()
            .mode(delorean::Mode::OrderOnly)
            .procs(2)
            .budget(1_000)
            .chunk_size(100)
            .build();
        let w = delorean_isa::workload::by_name("fft").unwrap();
        let mut sink = delorean::FileSink::with_flush_every(Vec::new(), 4);
        machine.record_to(w, 7, &mut sink);
        let bytes = sink.into_inner().unwrap();
        let index = delorean::index_stream(&bytes, 8).unwrap();
        let encoded = index.to_bytes();

        let s = validate_checkpoint_index(&encoded, &bytes).unwrap();
        assert_eq!(s.interval_k, 8);
        assert_eq!(s.total_commits, index.total_commits);
        assert_eq!(s.entries, index.entries.len());
        assert_eq!(s.source_bytes, bytes.len() as u64);

        // Any bit flip in the sidecar is a validation failure.
        let mut tampered = encoded.clone();
        let mid = tampered.len() / 2;
        tampered[mid] ^= 0x10;
        assert!(validate_checkpoint_index(&tampered, &bytes).is_err());

        // A different source stream fails the fingerprint binding.
        let mut other = bytes.clone();
        let last = other.len() - 1;
        other[last] ^= 0x01;
        assert!(validate_checkpoint_index(&encoded, &other).is_err());
    }

    #[test]
    fn garbage_header_is_flagged_not_panicked() {
        let report = lint_stream(&b"not a dlrn stream at all"[..]);
        assert!(!report.trailer_seen);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, "stream-decode");
        assert_eq!(report.diagnostics[0].severity, Severity::Error);
    }

    #[test]
    fn empty_input_is_flagged() {
        let report = lint_stream(&b""[..]);
        assert_eq!(report.diagnostics[0].code, "stream-decode");
    }

    #[test]
    fn truncated_stream_reports_salvage_as_warnings() {
        let machine = delorean::Machine::builder()
            .mode(delorean::Mode::OrderOnly)
            .procs(2)
            .budget(1_000)
            .chunk_size(100)
            .build();
        let w = delorean_isa::workload::by_name("fft").unwrap();
        let mut sink = delorean::FileSink::with_flush_every(Vec::new(), 4);
        machine.record_to(w, 7, &mut sink);
        let pristine = sink.into_inner().unwrap();

        // An intact stream carries no salvage section.
        let clean = lint_bytes(&pristine);
        assert!(clean.salvage.is_none());
        assert!(clean
            .diagnostics
            .iter()
            .all(|d| d.severity != Severity::Error));

        // Truncated at half: the structural failure keeps its error
        // severity, the salvage account rides along as warnings.
        let report = lint_bytes(&pristine[..pristine.len() / 2]);
        assert!(!report.trailer_seen);
        let salvage = report.salvage.as_ref().expect("salvage section");
        assert!(salvage.recovered_commits > 0);
        assert!(!salvage.trailer_recovered);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "salvage-lost" && d.severity == Severity::Warning));
        assert!(report
            .diagnostics
            .iter()
            .filter(|d| d.code.starts_with("salvage-"))
            .all(|d| d.severity == Severity::Warning));
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.severity == Severity::Error),
            "a damaged stream must still fail the lint"
        );
        let mut json = String::new();
        report.write_json(&mut json);
        assert!(json.contains("\"salvage\":{\"total_bytes\":"));
    }

    fn stamped_stream(arbiter: ArbiterConfig, stamp: Option<u32>) -> Vec<u8> {
        use delorean::stream::{LogSink, StreamMeta, StreamTrailer};
        use delorean_chunk::{ParallelStats, RunStats, StateDigest};
        let meta = StreamMeta {
            mode: delorean::Mode::OrderOnly,
            n_procs: 2,
            chunk_size: 100,
            budget: 1_000,
            workload: *delorean_isa::workload::by_name("fft").unwrap(),
            app_seed: 1,
            devices: delorean_chunk::DeviceConfig::none(),
            initial_mem_hash: 0,
            interval: None,
            arbiter,
        };
        let mut sink = delorean::FileSink::new(Vec::new());
        sink.begin(&meta);
        sink.on_event(&LogEvent {
            committer: Committer::Proc(0),
            chunk_index: 1,
            cs_size: None,
            interrupt: None,
            io_values: Vec::new(),
            dma_data: Vec::new(),
            access_lines: Vec::new(),
            write_lines: Vec::new(),
            shard: stamp,
        });
        sink.finish(&StreamTrailer {
            stats: RunStats {
                cycles: 10,
                total_commits: 1,
                squashes: 0,
                squashed_insts: 0,
                overflow_truncations: 0,
                collision_truncations: 0,
                uncached_truncations: 0,
                interrupts: 0,
                dma_commits: 0,
                stall_cycles: vec![0, 0],
                traffic_bytes: 0,
                avg_chunk_size: 100.0,
                parallel: ParallelStats::default(),
                token: None,
                work_units: 1,
                digest: StateDigest {
                    mem_hash: 0,
                    stream_hashes: vec![0, 0],
                    retired: vec![100, 0],
                    committed_chunks: vec![1, 0],
                },
            },
        });
        sink.into_inner().unwrap()
    }

    #[test]
    fn shard_stamp_outside_topology_is_flagged() {
        let bytes = stamped_stream(ArbiterConfig::Sharded { shards: 2 }, Some(5));
        let report = lint_stream(&bytes[..]);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "arbiter-shard")
            .expect("out-of-range shard stamp must be flagged");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("segment"), "{}", d.message);
        assert!(d.message.contains("shard stamp 5"), "{}", d.message);
        assert!(d.message.contains("2-shard"), "{}", d.message);
    }

    #[test]
    fn shard_stamp_under_global_header_is_flagged() {
        let bytes = stamped_stream(ArbiterConfig::Global, Some(0));
        let report = lint_stream(&bytes[..]);
        assert!(report.diagnostics.iter().any(|d| d.code == "arbiter-shard"));
    }

    #[test]
    fn unstamped_events_under_sharded_header_are_clean() {
        // In-memory round trips drop stamps; that must not warn.
        let bytes = stamped_stream(ArbiterConfig::Sharded { shards: 2 }, None);
        let report = lint_stream(&bytes[..]);
        assert!(
            report.diagnostics.iter().all(|d| d.code != "arbiter-shard"),
            "{:?}",
            report.diagnostics
        );
        let in_range = stamped_stream(ArbiterConfig::Sharded { shards: 2 }, Some(1));
        let report = lint_stream(&in_range[..]);
        assert!(report.diagnostics.iter().all(|d| d.code != "arbiter-shard"));
    }

    #[test]
    fn sharded_recording_lints_clean_end_to_end() {
        let machine = delorean::Machine::builder()
            .mode(delorean::Mode::OrderOnly)
            .procs(4)
            .budget(2_000)
            .arbiter(ArbiterConfig::Sharded { shards: 2 })
            .build();
        let w = delorean_isa::workload::by_name("fft").unwrap();
        let mut sink = delorean::FileSink::new(Vec::new());
        machine.record_to(w, 7, &mut sink);
        let report = lint_bytes(&sink.into_inner().unwrap());
        assert!(report.trailer_seen);
        assert!(
            report
                .diagnostics
                .iter()
                .all(|d| d.severity != Severity::Error && d.code != "arbiter-shard"),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn strata_totals_cross_check() {
        let mut s = Stratifier::new(3, 4);
        s.observe(0, &[1, 2], &[1]);
        s.observe(1, &[3], &[]);
        s.observe(0, &[1], &[1]);
        let log = s.finish();
        let mut totals = vec![0u64; 3];
        for stratum in log.strata() {
            for (c, &d) in stratum.iter().enumerate() {
                totals[c] += u64::from(d);
            }
        }
        assert!(lint_strata(&log, &totals)
            .iter()
            .all(|d| d.severity != Severity::Error));
        totals[1] += 5;
        assert!(lint_strata(&log, &totals)
            .iter()
            .any(|d| d.code == "stratum-total-mismatch"));
    }
}
