//! Chunk-granularity race detection (pass 2).
//!
//! Replays a recording through
//! [`delorean::inspect::ReplayInspector`] with
//! per-chunk footprint collection enabled and builds the chunk
//! happens-before relation online with vector clocks. The columns of
//! the clock are the processors plus one extra column for the DMA
//! engine (which "acts like another processor" at the arbiter).
//!
//! Happens-before at chunk granularity is the union of *program order*
//! (successive chunks of one processor) and *conflict order* (a chunk
//! that touches a line after another chunk wrote it, or writes a line
//! another chunk read). When two chunks conflict and neither one's
//! vector clock already dominates the other's, nothing but the recorded
//! commit log fixes their order — DeLorean's arbiter serialized them
//! one way, and a different legal interleaving could have serialized
//! them the other way. Those pairs are reported as chunk races,
//! classified by what the recorded mode pins down (the PI log for
//! OrderSize/OrderOnly; the predefined round-robin order for PicoLog).
//!
//! Per-line state is held only for lines actually touched, and each
//! line keeps one last-writer plus the readers since that write, so
//! memory stays proportional to the working set, not the log length.
//! A cumulative write [`Signature`] screens chunks that cannot
//! possibly conflict before any per-line work happens.

use crate::report::{diagnostics_json, Diagnostic};
use delorean::inspect::{CommitEvent, InspectError, ReplayInspector};
use delorean::{LogSource, Mode};
use delorean_chunk::Committer;
use delorean_mem::Signature;
use std::collections::HashMap;
use std::rc::Rc;

/// A committed chunk that per-line state points back at.
#[derive(Debug)]
struct CommitInfo {
    /// Global chunk commit count at which this chunk committed.
    gcc: u64,
    /// Clock column (processor ID, or `n_procs` for DMA).
    col: usize,
    /// Per-committer chunk index.
    chunk: u64,
    /// The chunk's vector clock at commit time.
    vc: Vec<u64>,
}

#[derive(Debug, Default)]
struct LineState {
    last_writer: Option<Rc<CommitInfo>>,
    /// Readers since the last write; at most one entry per column.
    readers: Vec<Rc<CommitInfo>>,
}

/// Access pattern of a racing chunk pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictKind {
    /// Earlier chunk wrote, later chunk wrote.
    WriteWrite,
    /// Earlier chunk wrote, later chunk read.
    WriteRead,
    /// Earlier chunk read, later chunk wrote.
    ReadWrite,
}

impl ConflictKind {
    /// Short label (`W-W`, `W-R`, `R-W`).
    pub fn label(self) -> &'static str {
        match self {
            ConflictKind::WriteWrite => "W-W",
            ConflictKind::WriteRead => "W-R",
            ConflictKind::ReadWrite => "R-W",
        }
    }
}

/// One endpoint of a racing chunk pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceEndpoint {
    /// Committer label (`P3` or `DMA`).
    pub who: String,
    /// Global commit count of the chunk.
    pub gcc: u64,
    /// Per-committer chunk index.
    pub chunk: u64,
}

/// Two conflicting chunks whose order only the commit log fixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRace {
    /// First (earlier-committed) chunk.
    pub earlier: RaceEndpoint,
    /// Second chunk.
    pub later: RaceEndpoint,
    /// Cache line the conflict was detected on.
    pub line: u64,
    /// Access pattern.
    pub kind: ConflictKind,
}

/// Options for the chunk race pass.
#[derive(Debug, Clone)]
pub struct RaceOptions {
    /// Maximum example races carried in the report.
    pub max_examples: usize,
}

impl Default for RaceOptions {
    fn default() -> Self {
        Self { max_examples: 16 }
    }
}

/// Output of the chunk race pass.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Chunks replayed.
    pub chunks: u64,
    /// Conflict edges observed (including already-ordered ones).
    pub conflicts: u64,
    /// Chunk pairs ordered only by the recorded commit log.
    pub races_total: u64,
    /// Chunks the cumulative write signature screened out entirely.
    pub screened: u64,
    /// Example races (capped).
    pub examples: Vec<ChunkRace>,
    /// What the recorded mode pins the racy orders with.
    pub ordered_by: String,
    /// Findings (one warning per example race, plus summaries).
    pub diagnostics: Vec<Diagnostic>,
}

impl RaceReport {
    /// A report for a replay that failed before completing — the
    /// [`InspectError`] (which names the commit index the stream went
    /// bad at) becomes the pass's single error finding.
    pub fn failed(err: &InspectError) -> Self {
        Self {
            chunks: 0,
            conflicts: 0,
            races_total: 0,
            screened: 0,
            examples: Vec::new(),
            ordered_by: String::new(),
            diagnostics: vec![Diagnostic::error("replay-failed", err.to_string())],
        }
    }

    pub(crate) fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"chunks\":{},\"conflicts\":{},\"races_total\":{},\"screened\":{},\"ordered_by\":\"{}\",\"examples\":[",
            self.chunks,
            self.conflicts,
            self.races_total,
            self.screened,
            crate::report::json_escape(&self.ordered_by)
        ));
        for (i, r) in self.examples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"line\":{},\"earlier\":{{\"who\":\"{}\",\"gcc\":{},\"chunk\":{}}},\"later\":{{\"who\":\"{}\",\"gcc\":{},\"chunk\":{}}}}}",
                r.kind.label(),
                r.line,
                crate::report::json_escape(&r.earlier.who),
                r.earlier.gcc,
                r.earlier.chunk,
                crate::report::json_escape(&r.later.who),
                r.later.gcc,
                r.later.chunk
            ));
        }
        out.push_str("],\"diagnostics\":");
        diagnostics_json(&self.diagnostics, out);
        out.push('}');
    }
}

impl core::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.ordered_by.is_empty() {
            writeln!(f, "chunk race detection: replay did not complete")?;
        } else {
            writeln!(
                f,
                "chunk race detection: {} chunks, {} conflict edge(s), {} race(s); order fixed by {}",
                self.chunks, self.conflicts, self.races_total, self.ordered_by
            )?;
        }
        for r in &self.examples {
            writeln!(
                f,
                "  race ({}) on line {}: {} chunk {} (commit {}) vs {} chunk {} (commit {})",
                r.kind.label(),
                r.line,
                r.earlier.who,
                r.earlier.chunk,
                r.earlier.gcc,
                r.later.who,
                r.later.chunk,
                r.later.gcc
            )?;
        }
        // Non-race findings (replay failures, summaries) are not in
        // `examples`; print them so the human rendering loses nothing.
        for d in self.diagnostics.iter().filter(|d| d.code != "chunk-race") {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

fn vc_le(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b.iter()).all(|(x, y)| x <= y)
}

fn vc_join(into: &mut [u64], from: &[u64]) {
    for (x, y) in into.iter_mut().zip(from.iter()) {
        *x = (*x).max(*y);
    }
}

fn who_label(col: usize, n_procs: u32) -> String {
    if col == n_procs as usize {
        "DMA".to_string()
    } else {
        format!("P{col}")
    }
}

/// Online chunk-granularity race detector.
///
/// Feed it [`CommitEvent`]s (with footprints collected) in commit
/// order; call [`Detector::finish`] for the report.
#[derive(Debug)]
pub struct Detector {
    n_procs: u32,
    clocks: Vec<Vec<u64>>,
    lines: HashMap<u64, LineState>,
    cum_writes: Signature,
    chunks: u64,
    conflicts: u64,
    races_total: u64,
    screened: u64,
    examples: Vec<ChunkRace>,
    ordered_by: String,
    max_examples: usize,
}

impl Detector {
    /// A detector for a recording in `mode` with `n_procs` processors.
    pub fn new(mode: Mode, n_procs: u32, opts: &RaceOptions) -> Self {
        let n_cols = n_procs as usize + 1;
        let ordered_by = if mode.has_pi_log() {
            format!("the recorded PI commit log ({mode})")
        } else {
            format!("the predefined round-robin commit order ({mode})")
        };
        Self {
            n_procs,
            clocks: vec![vec![0; n_cols]; n_cols],
            lines: HashMap::new(),
            cum_writes: Signature::new(),
            chunks: 0,
            conflicts: 0,
            races_total: 0,
            screened: 0,
            examples: Vec::new(),
            ordered_by,
            max_examples: opts.max_examples,
        }
    }

    /// Observes one committed chunk.
    pub fn observe(&mut self, ev: &CommitEvent) {
        let col = match ev.committer {
            Committer::Proc(p) => p as usize,
            Committer::Dma => self.n_procs as usize,
        };
        self.chunks += 1;
        self.clocks[col][col] += 1;

        // Conflict edges against current per-line state. The committer
        // clock already carries program order and previously absorbed
        // edges; a conflicting predecessor it does not dominate is
        // ordered only by the commit log. The cumulative write
        // signature screens read lines that were never written (no
        // writer to conflict with); a read-only chunk with no
        // signature hit does no conflict checking at all — its reads
        // still get recorded below, because a later remote write to
        // one of them is an R-W race.
        let any_read_hit = ev
            .read_lines
            .iter()
            .any(|&l| self.cum_writes.may_contain(l));
        if ev.write_lines.is_empty() && !any_read_hit {
            self.screened += 1;
        } else {
            let mut edges: Vec<(Rc<CommitInfo>, u64, ConflictKind)> = Vec::new();
            for &line in &ev.read_lines {
                if !self.cum_writes.may_contain(line) {
                    continue;
                }
                if let Some(w) = self.lines.get(&line).and_then(|s| s.last_writer.as_ref()) {
                    if w.col != col {
                        edges.push((Rc::clone(w), line, ConflictKind::WriteRead));
                    }
                }
            }
            for &line in &ev.write_lines {
                if let Some(state) = self.lines.get(&line) {
                    if let Some(w) = &state.last_writer {
                        if w.col != col {
                            edges.push((Rc::clone(w), line, ConflictKind::WriteWrite));
                        }
                    }
                    for r in &state.readers {
                        if r.col != col {
                            edges.push((Rc::clone(r), line, ConflictKind::ReadWrite));
                        }
                    }
                }
            }
            // Process newest predecessor first, absorbing each edge
            // into the clock before checking the next: a predecessor
            // that happens-before another predecessor of this same
            // chunk is then seen as transitively ordered rather than
            // flagged as a second race.
            edges.sort_by_key(|e| std::cmp::Reverse(e.0.gcc));
            for (prev, line, kind) in &edges {
                self.edge(prev, col, *line, *kind, ev);
                vc_join(&mut self.clocks[col], &prev.vc);
            }
        }

        // Record this chunk in the per-line state.
        let info = Rc::new(CommitInfo {
            gcc: ev.gcc,
            col,
            chunk: ev.chunk_index,
            vc: self.clocks[col].clone(),
        });
        for &line in &ev.write_lines {
            let state = self.lines.entry(line).or_default();
            state.last_writer = Some(Rc::clone(&info));
            state.readers.clear();
            self.cum_writes.insert(line);
        }
        for &line in &ev.read_lines {
            // A later remote write to this line is an R-W conflict, so
            // readers are recorded for every touched line.
            let state = self.lines.entry(line).or_default();
            state.readers.retain(|r| r.col != col);
            state.readers.push(Rc::clone(&info));
        }
    }

    fn edge(
        &mut self,
        prev: &Rc<CommitInfo>,
        col: usize,
        line: u64,
        kind: ConflictKind,
        ev: &CommitEvent,
    ) {
        self.conflicts += 1;
        if !vc_le(&prev.vc, &self.clocks[col]) {
            self.races_total += 1;
            if self.examples.len() < self.max_examples {
                self.examples.push(ChunkRace {
                    earlier: RaceEndpoint {
                        who: who_label(prev.col, self.n_procs),
                        gcc: prev.gcc,
                        chunk: prev.chunk,
                    },
                    later: RaceEndpoint {
                        who: who_label(col, self.n_procs),
                        gcc: ev.gcc,
                        chunk: ev.chunk_index,
                    },
                    line,
                    kind,
                });
            }
        }
    }

    /// Finalizes the pass into a [`RaceReport`].
    ///
    /// Example races (and the warnings derived from them) are sorted by
    /// (later commit slot, earlier commit slot, line, kind) so the
    /// report — and the CLI's `--json` rendering of it — is
    /// byte-stable regardless of per-line discovery order.
    pub fn finish(mut self) -> RaceReport {
        self.examples.sort_by_key(|r| {
            (
                r.later.gcc,
                r.earlier.gcc,
                r.line,
                match r.kind {
                    ConflictKind::WriteWrite => 0u8,
                    ConflictKind::WriteRead => 1,
                    ConflictKind::ReadWrite => 2,
                },
            )
        });
        let mut diagnostics = Vec::new();
        for r in &self.examples {
            diagnostics.push(Diagnostic::warning(
                "chunk-race",
                format!(
                    "{} race on line {}: {} chunk {} (commit {}) and {} chunk {} (commit {}) are ordered only by {}",
                    r.kind.label(),
                    r.line,
                    r.earlier.who,
                    r.earlier.chunk,
                    r.earlier.gcc,
                    r.later.who,
                    r.later.chunk,
                    r.later.gcc,
                    self.ordered_by
                ),
            ));
        }
        if self.races_total > self.examples.len() as u64 {
            diagnostics.push(Diagnostic::info(
                "chunk-race-summary",
                format!(
                    "{} further chunk race(s) not listed",
                    self.races_total - self.examples.len() as u64
                ),
            ));
        }
        RaceReport {
            chunks: self.chunks,
            conflicts: self.conflicts,
            races_total: self.races_total,
            screened: self.screened,
            examples: self.examples,
            ordered_by: self.ordered_by,
            diagnostics,
        }
    }
}

/// Replays `source` to the end, detecting chunk races.
///
/// # Errors
///
/// Returns the [`InspectError`] (with the commit index it surfaced at)
/// if the stream is malformed or the replay diverges.
pub fn detect_races<S: LogSource>(
    source: S,
    opts: &RaceOptions,
) -> Result<RaceReport, InspectError> {
    let (mode, n_procs) = {
        let Some(meta) = source.meta() else {
            return Err(InspectError {
                detail: "log source carries no recording metadata".to_string(),
                commit: None,
            });
        };
        (meta.mode, meta.n_procs)
    };
    let mut inspector = ReplayInspector::from_source(source)?;
    inspector.collect_footprints(true);
    let mut detector = Detector::new(mode, n_procs, opts);
    while let Some(ev) = inspector.step()? {
        detector.observe(&ev);
    }
    Ok(detector.finish())
}

#[cfg(test)]
mod tests {
    // Test code may panic freely.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    fn ev(
        gcc: u64,
        committer: Committer,
        chunk_index: u64,
        read_lines: Vec<u64>,
        write_lines: Vec<u64>,
    ) -> CommitEvent {
        CommitEvent {
            gcc,
            committer,
            chunk_index,
            size: 1,
            interrupt: false,
            truncation: delorean_chunk::TruncationReason::StandardSize,
            io_loads: 0,
            dma_words: 0,
            watch_hits: Vec::new(),
            read_lines,
            write_lines,
        }
    }

    #[test]
    fn disjoint_chunks_do_not_race() {
        let mut d = Detector::new(Mode::OrderOnly, 2, &RaceOptions::default());
        d.observe(&ev(1, Committer::Proc(0), 0, vec![1], vec![2]));
        d.observe(&ev(2, Committer::Proc(1), 0, vec![3], vec![4]));
        let r = d.finish();
        assert_eq!(r.conflicts, 0);
        assert_eq!(r.races_total, 0);
    }

    #[test]
    fn conflicting_unordered_chunks_race() {
        let mut d = Detector::new(Mode::OrderOnly, 2, &RaceOptions::default());
        d.observe(&ev(1, Committer::Proc(0), 0, vec![], vec![7]));
        d.observe(&ev(2, Committer::Proc(1), 0, vec![7], vec![]));
        let r = d.finish();
        assert_eq!(r.conflicts, 1);
        assert_eq!(r.races_total, 1);
        assert_eq!(r.examples[0].kind, ConflictKind::WriteRead);
        assert_eq!(r.examples[0].earlier.who, "P0");
        assert_eq!(r.examples[0].later.who, "P1");
    }

    #[test]
    fn transitively_ordered_conflict_is_not_a_race() {
        let mut d = Detector::new(Mode::OrderOnly, 3, &RaceOptions::default());
        // P0 writes line 7; P1 reads it (race 1, and edge P0→P1);
        // P1 writes line 9; P2 reads 9 (race 2, edge P1→P2);
        // P2 then reads 7 — ordered after P0 transitively: no race.
        d.observe(&ev(1, Committer::Proc(0), 0, vec![], vec![7]));
        d.observe(&ev(2, Committer::Proc(1), 0, vec![7], vec![9]));
        d.observe(&ev(3, Committer::Proc(2), 0, vec![9, 7], vec![]));
        let r = d.finish();
        assert_eq!(r.conflicts, 3, "{:?}", r.examples);
        assert_eq!(r.races_total, 2, "{:?}", r.examples);
    }

    #[test]
    fn program_order_is_not_a_race() {
        let mut d = Detector::new(Mode::OrderOnly, 2, &RaceOptions::default());
        d.observe(&ev(1, Committer::Proc(0), 0, vec![], vec![5]));
        d.observe(&ev(2, Committer::Proc(0), 1, vec![5], vec![5]));
        let r = d.finish();
        assert_eq!(r.races_total, 0);
    }

    #[test]
    fn read_then_remote_write_is_rw_race() {
        let mut d = Detector::new(Mode::OrderSize, 2, &RaceOptions::default());
        d.observe(&ev(1, Committer::Proc(0), 0, vec![], vec![3]));
        d.observe(&ev(2, Committer::Proc(1), 0, vec![3], vec![]));
        d.observe(&ev(3, Committer::Proc(0), 1, vec![], vec![3]));
        let r = d.finish();
        // P1's read races with both P0 writes; the second P0 write
        // also W-W conflicts with the first but is program-ordered.
        let kinds: Vec<_> = r.examples.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&ConflictKind::WriteRead));
        assert!(kinds.contains(&ConflictKind::ReadWrite));
    }

    #[test]
    fn dma_column_participates() {
        let mut d = Detector::new(Mode::OrderOnly, 2, &RaceOptions::default());
        d.observe(&ev(1, Committer::Dma, 0, vec![], vec![11]));
        d.observe(&ev(2, Committer::Proc(1), 0, vec![11], vec![]));
        let r = d.finish();
        assert_eq!(r.races_total, 1);
        assert_eq!(r.examples[0].earlier.who, "DMA");
    }

    #[test]
    fn examples_are_sorted_deterministically() {
        // P2's chunk races with both earlier writers. The detector
        // discovers the edges newest-predecessor-first, so without the
        // finish-time sort the examples would come out in descending
        // earlier-slot order.
        let mut d = Detector::new(Mode::OrderOnly, 3, &RaceOptions::default());
        d.observe(&ev(1, Committer::Proc(0), 0, vec![], vec![7]));
        d.observe(&ev(2, Committer::Proc(1), 0, vec![], vec![8]));
        d.observe(&ev(3, Committer::Proc(2), 0, vec![7, 8], vec![]));
        let r = d.finish();
        assert_eq!(r.races_total, 2);
        let keys: Vec<_> = r
            .examples
            .iter()
            .map(|e| (e.later.gcc, e.earlier.gcc, e.line))
            .collect();
        assert_eq!(keys, vec![(3, 1, 7), (3, 2, 8)]);
        // The derived warnings follow the same order.
        let warnings: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == "chunk-race")
            .collect();
        assert!(warnings[0].message.contains("commit 1"), "{warnings:?}");
        assert!(warnings[1].message.contains("commit 2"), "{warnings:?}");
    }

    #[test]
    fn picolog_reports_round_robin_ordering() {
        let d = Detector::new(Mode::PicoLog, 2, &RaceOptions::default());
        assert!(d.finish().ordered_by.contains("round-robin"));
        let d = Detector::new(Mode::OrderOnly, 2, &RaceOptions::default());
        assert!(d.finish().ordered_by.contains("PI"));
    }
}
