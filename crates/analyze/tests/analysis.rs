//! End-to-end tests over the three analysis passes: a racy catalog
//! workload must produce confirmed chunk races, a data-race-free
//! workload must produce none, lint-accepted streams must replay
//! without divergence, and corrupted streams must be flagged — never
//! panicked on.

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::{serialize, FileSource, Machine, MemorySource, Mode, Recording};
use delorean_analyze::{
    analyze_workload, detect_races, lint_stream, RaceOptions, Severity, StaticOptions,
};
use delorean_isa::workload::{self, WorkloadSpec};
use proptest::prelude::*;
use std::io::Cursor;

fn record(spec: WorkloadSpec, mode: Mode, procs: u32, seed: u64) -> (Machine, Recording) {
    let machine = Machine::builder()
        .mode(mode)
        .procs(procs)
        .budget(4_000)
        .build();
    let recording = machine.record(&spec, seed);
    (machine, recording)
}

/// A workload with genuinely unsynchronized shared accesses: no locks,
/// no barriers, cross-thread shared traffic.
fn racy_spec() -> WorkloadSpec {
    *workload::by_name("radix").expect("radix is in the catalog")
}

/// A data-race-free workload: every access stays in the thread's
/// private region (no shared traffic at all, no locks needed).
fn drf_spec() -> WorkloadSpec {
    WorkloadSpec {
        shared_frac: 0.0,
        lock_every: 0,
        barrier_every_iters: 0,
        ..WorkloadSpec::test_spec()
    }
}

#[test]
fn racy_catalog_workload_yields_confirmed_chunk_races() {
    let (_, recording) = record(racy_spec(), Mode::OrderOnly, 4, 11);
    let report = detect_races(
        MemorySource::of_recording(&recording),
        &RaceOptions::default(),
    )
    .expect("intact recording replays");
    assert!(
        report.races_total >= 1,
        "radix shares unsynchronized lines across threads; expected at least one \
         chunk pair ordered only by the commit log, got {report:?}"
    );
    assert!(!report.examples.is_empty());
    // The static pass agrees: it flags unsynchronized conflicting pairs.
    let footprints = analyze_workload(
        &recording.workload,
        recording.n_procs,
        recording.app_seed,
        &StaticOptions::default(),
    );
    assert!(
        footprints.racy_sites > 0,
        "static pass should flag radix's unlocked shared stores"
    );
}

#[test]
fn drf_workload_yields_zero_races() {
    let (_, recording) = record(drf_spec(), Mode::OrderOnly, 4, 11);
    let report = detect_races(
        MemorySource::of_recording(&recording),
        &RaceOptions::default(),
    )
    .expect("intact recording replays");
    assert_eq!(
        report.races_total, 0,
        "a private-only workload cannot race: {:?}",
        report.examples
    );
    let footprints = analyze_workload(
        &recording.workload,
        recording.n_procs,
        recording.app_seed,
        &StaticOptions::default(),
    );
    assert_eq!(
        footprints.racy_sites, 0,
        "static pass must not flag private-only accesses: {:?}",
        footprints.examples
    );
}

#[test]
fn race_detection_works_across_all_modes() {
    for mode in Mode::all() {
        let (_, recording) = record(racy_spec(), mode, 4, 7);
        let report = detect_races(
            MemorySource::of_recording(&recording),
            &RaceOptions::default(),
        )
        .expect("intact recording replays");
        assert!(
            report.races_total >= 1,
            "{mode}: expected chunk races in radix"
        );
        assert!(
            !report.ordered_by.is_empty(),
            "{mode}: report names the ordering authority"
        );
    }
}

fn error_count(diags: &[delorean_analyze::Diagnostic]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// A stream the lint pass accepts (no error findings) replays to
    /// the end without divergence.
    #[test]
    fn lint_accepted_streams_replay_without_divergence(
        seed in 0u64..1000,
        mode_tag in 0u8..3,
        procs in 2u32..5,
    ) {
        let mode = [Mode::OrderSize, Mode::OrderOnly, Mode::PicoLog][mode_tag as usize];
        let (machine, recording) = record(racy_spec(), mode, procs, seed);
        let bytes = serialize::to_bytes(&recording);
        let lint = lint_stream(Cursor::new(&bytes[..]));
        prop_assert_eq!(
            error_count(&lint.diagnostics), 0,
            "an intact recording must lint clean: {:?}", lint.diagnostics
        );
        prop_assert!(lint.trailer_seen);
        let source = FileSource::open(Cursor::new(&bytes[..])).unwrap();
        let report = detect_races(source, &RaceOptions::default()).unwrap();
        prop_assert_eq!(report.chunks, recording.stats.total_commits);
        let replay = machine.replay(&recording).unwrap();
        prop_assert!(replay.deterministic, "{:?}", replay.divergence);
    }

    /// Any single byte flip is flagged with an error finding — and
    /// never a panic — by both the lint pass and the replay pass.
    #[test]
    fn corrupted_streams_are_flagged_not_panicked(
        seed in 0u64..1000,
        frac in 0.0f64..1.0,
    ) {
        let (_, recording) = record(drf_spec(), Mode::OrderOnly, 2, seed);
        let mut bytes = serialize::to_bytes(&recording);
        // Skip the 4-byte magic: flipping it is the trivially-detected
        // case already covered by unit tests.
        let idx = 4 + ((bytes.len() - 5) as f64 * frac) as usize;
        bytes[idx] ^= 0x40;
        let lint = lint_stream(Cursor::new(&bytes[..]));
        prop_assert!(
            error_count(&lint.diagnostics) >= 1,
            "flip at byte {idx} of {} must be flagged: {:?}",
            bytes.len(), lint.diagnostics
        );
        // The replay pass surfaces the corruption as an error, not a
        // panic: either the header fails to open or replay fails
        // mid-stream with a commit index.
        match FileSource::open(Cursor::new(&bytes[..])) {
            Err(_) => {}
            Ok(source) => {
                prop_assert!(detect_races(source, &RaceOptions::default()).is_err());
            }
        }
    }

    /// Truncating a stream anywhere is flagged, never panicked on.
    #[test]
    fn truncated_streams_are_flagged_not_panicked(
        seed in 0u64..1000,
        frac in 0.0f64..1.0,
    ) {
        let (_, recording) = record(drf_spec(), Mode::OrderOnly, 2, seed);
        let bytes = serialize::to_bytes(&recording);
        let cut = 1 + ((bytes.len() - 2) as f64 * frac) as usize;
        let lint = lint_stream(Cursor::new(&bytes[..cut]));
        prop_assert!(
            error_count(&lint.diagnostics) >= 1,
            "cut at byte {cut} of {} must be flagged: {:?}",
            bytes.len(), lint.diagnostics
        );
    }
}
