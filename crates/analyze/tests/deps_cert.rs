//! End-to-end tests over the dependence-graph pass and its
//! replay-parallelism certificate: every catalog workload × mode must
//! verify the recorded commit order as a linear extension of the exact
//! chunk dependence DAG and emit a byte-deterministic certificate; a
//! synthetically reordered log must be rejected with an error finding;
//! a truncated stream must degrade to a `partial` certificate.

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::log::PiLog;
use delorean::{serialize, ArbiterConfig, FileSink, Machine, Mode, Recording};
use delorean_analyze::{deps_from_bytes, validate_certificate, DepsOptions, DepsReport, Severity};
use delorean_chunk::Committer;
use delorean_isa::workload::{self, WorkloadSpec};
use proptest::prelude::*;

fn record(
    spec: &WorkloadSpec,
    mode: Mode,
    procs: u32,
    seed: u64,
    budget: u64,
    arbiter: ArbiterConfig,
) -> Recording {
    let mut b = Machine::builder();
    b.mode(mode).procs(procs).budget(budget).arbiter(arbiter);
    b.build().record(spec, seed)
}

fn error_count(report: &DepsReport) -> usize {
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
}

/// Every catalog workload, in every mode: the recorded commit order is
/// a linear extension of the exact dependence DAG (no error findings,
/// info verdict present) and the emitted certificate validates against
/// the source bytes.
#[test]
fn catalog_commit_orders_are_linear_extensions() {
    for spec in workload::catalog() {
        for mode in Mode::all() {
            let rec = record(spec, mode, 4, 11, 2_000, ArbiterConfig::Global);
            let bytes = serialize::to_bytes(&rec);
            let report = deps_from_bytes(&bytes, &DepsOptions::default());
            assert!(
                report.replay_complete,
                "{}/{mode}: replay failed",
                spec.name
            );
            assert_eq!(
                error_count(&report),
                0,
                "{}/{mode}: {:?}",
                spec.name,
                report.diagnostics
            );
            assert!(
                report
                    .diagnostics
                    .iter()
                    .any(|d| d.code == "linear-extension" && d.severity == Severity::Info),
                "{}/{mode}: missing linear-extension verdict",
                spec.name
            );
            let cert = report.certificate().expect("complete replay emits a cert");
            let summary = validate_certificate(&cert, Some(&bytes))
                .unwrap_or_else(|e| panic!("{}/{mode}: invalid cert: {e}", spec.name));
            assert!(!summary.partial);
            assert_eq!(summary.node_count, report.nodes.len() as u64);
        }
    }
}

/// Swapping two adjacent, exactly-conflicting PI entries of different
/// processors produces a log whose commit order is *not* a linear
/// extension of the dependence DAG — the pass must flag it with a
/// [`Severity::Error`] finding (either the linear-extension verdict or
/// a replay failure), never accept it.
#[test]
fn reordered_conflicting_commits_are_rejected() {
    let spec = workload::by_name("radix").expect("radix is in the catalog");
    let rec = record(spec, Mode::OrderOnly, 4, 11, 4_000, ArbiterConfig::Global);
    let entries: Vec<Committer> = rec.logs.pi.iter().collect();
    let conflicts = |i: usize, j: usize| {
        let hit = |w: &[u64], a: &[u64]| w.iter().any(|l| a.binary_search(l).is_ok());
        hit(&rec.logs.pi_write_footprints[i], &rec.logs.pi_footprints[j])
            || hit(&rec.logs.pi_write_footprints[j], &rec.logs.pi_footprints[i])
    };
    let mut rejected = false;
    let mut tried = 0;
    for i in 0..entries.len().saturating_sub(1) {
        // Only cross-processor swaps keep each per-processor stream
        // well-formed (chunk indices are assigned in per-proc order).
        let (Committer::Proc(a), Committer::Proc(b)) = (entries[i], entries[i + 1]) else {
            continue;
        };
        if a == b || !conflicts(i, i + 1) || tried >= 8 {
            continue;
        }
        tried += 1;
        let mut reordered = rec.clone();
        let mut pi = PiLog::new(rec.n_procs);
        for k in 0..entries.len() {
            let k = match k {
                k if k == i => i + 1,
                k if k == i + 1 => i,
                k => k,
            };
            pi.push(entries[k]);
        }
        reordered.logs.pi = pi;
        reordered.logs.pi_footprints.swap(i, i + 1);
        reordered.logs.pi_write_footprints.swap(i, i + 1);
        let bytes = serialize::to_bytes(&reordered);
        let report = deps_from_bytes(&bytes, &DepsOptions::default());
        if error_count(&report) >= 1 {
            rejected = true;
            break;
        }
    }
    assert!(tried > 0, "radix must have adjacent conflicting commits");
    assert!(
        rejected,
        "no swapped conflicting pair was flagged in {tried} attempt(s)"
    );
}

/// A truncated multi-segment stream degrades gracefully: the pass
/// builds the graph over the salvaged prefix, marks the certificate
/// `partial` with the lost ranges, and the certificate still validates.
#[test]
fn truncated_streams_yield_partial_certificates() {
    let spec = workload::by_name("radix").expect("radix is in the catalog");
    let machine = Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(4)
        .budget(4_000)
        .chunk_size(500)
        .build();
    let mut sink = FileSink::with_flush_every(Vec::new(), 8);
    machine.record_to(spec, 11, &mut sink);
    let bytes = sink.into_inner().expect("writing to a Vec cannot fail");
    let cut = bytes.len() * 3 / 4;
    let report = deps_from_bytes(&bytes[..cut], &DepsOptions::default());
    assert!(report.partial, "{:?}", report.diagnostics);
    assert!(!report.lost_ranges.is_empty());
    assert!(!report.nodes.is_empty(), "prefix contributes a graph");
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == "deps-partial" && d.severity == Severity::Warning));
    let cert = report.certificate().expect("partial replays still certify");
    let summary = validate_certificate(&cert, Some(&bytes[..cut])).expect("cert validates");
    assert!(summary.partial);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Across sampled workload/mode/seed/topology points: the pass
    /// accepts the recording (linear extension holds) and certificate
    /// emission is byte-identical across two independent runs.
    #[test]
    fn certificates_are_byte_deterministic(
        workload_idx in 0usize..workload::catalog().len(),
        mode_tag in 0u8..3,
        seed in 0u64..1000,
        procs in 2u32..5,
        sharded in proptest::bool::ANY,
    ) {
        let mode = [Mode::OrderSize, Mode::OrderOnly, Mode::PicoLog][mode_tag as usize];
        let arbiter = if sharded {
            ArbiterConfig::Sharded { shards: 4 }
        } else {
            ArbiterConfig::Global
        };
        let spec = &workload::catalog()[workload_idx];
        let rec = record(spec, mode, procs, seed, 2_000, arbiter);
        let bytes = serialize::to_bytes(&rec);
        let a = deps_from_bytes(&bytes, &DepsOptions::default());
        let b = deps_from_bytes(&bytes, &DepsOptions::default());
        prop_assert_eq!(error_count(&a), 0, "{:?}", a.diagnostics);
        let cert_a = a.certificate().expect("complete replay emits a cert");
        let cert_b = b.certificate().expect("complete replay emits a cert");
        prop_assert_eq!(&cert_a, &cert_b, "certificate must be byte-deterministic");
        prop_assert!(validate_certificate(&cert_a, Some(&bytes)).is_ok());
    }
}

/// A certificate feeds straight back into the chunk-parallel replay
/// executor: `certificate_hints` distills the reduced DAG, the hinted
/// replay provably skips some retirement-time signature checks, and the
/// result stays byte-identical to the serial replay. Tampered
/// certificates are refused before any hint is produced.
#[test]
fn certificate_hints_drive_the_parallel_executor() {
    use delorean::{FileSource, ParallelReplayOptions};
    use delorean_analyze::certificate_hints;

    let spec = workload::by_name("fft").unwrap();
    let rec = record(spec, Mode::OrderOnly, 4, 11, 4_000, ArbiterConfig::Global);
    let bytes = serialize::to_bytes(&rec);
    let report = deps_from_bytes(&bytes, &DepsOptions::default());
    assert_eq!(error_count(&report), 0, "{:?}", report.diagnostics);
    let cert = report.certificate().expect("complete replay emits a cert");
    let hints = certificate_hints(&cert, Some(&bytes)).expect("pristine cert distills to hints");
    assert_eq!(hints.len() as u64, rec.stats.total_commits);

    let mut b = Machine::builder();
    b.mode(Mode::OrderOnly).procs(4).budget(4_000);
    let m = b.build();
    let open = || FileSource::open(&bytes[..]).expect("pristine stream decodes");
    let (serial, _) = m
        .replay_parallel_with(open(), &ParallelReplayOptions::with_jobs(1))
        .unwrap();
    assert!(serial.deterministic, "{:?}", serial.divergence);
    let opts = ParallelReplayOptions {
        jobs: 4,
        depth: 8,
        hints: Some(hints),
    };
    let (hinted, spec_stats) = m.replay_parallel_with(open(), &opts).unwrap();
    assert!(hinted.deterministic, "{:?}", hinted.divergence);
    assert_eq!(hinted.stats.digest, serial.stats.digest);
    assert!(
        spec_stats.hint_skips > 0,
        "an exact-DAG certificate must prove at least one check redundant: {spec_stats:?}"
    );

    // `DepsReport::hints()` is the in-process shortcut for the same DAG.
    let direct = report.hints();
    assert_eq!(direct.len(), rec.stats.total_commits as usize);

    // A tampered certificate must be refused outright.
    let tampered = cert.replace("\"edges\":[", "\"edges\":[[1,2],");
    assert!(certificate_hints(&tampered, Some(&bytes))
        .unwrap_err()
        .contains("checksum mismatch"));
}
