//! Programs and a label-based program builder.

use crate::inst::Inst;

/// An immutable thread program: a flat instruction array plus entry
/// points.
///
/// # Examples
///
/// ```
/// use delorean_isa::{Inst, ProgramBuilder, Reg};
/// let mut b = ProgramBuilder::new();
/// b.emit(Inst::Imm { rd: Reg::new(0), value: 7 });
/// b.emit(Inst::Halt);
/// let prog = b.build(0, None);
/// assert_eq!(prog.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    code: Vec<Inst>,
    entry: usize,
    handler: Option<usize>,
}

impl Program {
    /// Creates a program from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `entry` (or `handler`, when present) is out of bounds.
    pub fn new(code: Vec<Inst>, entry: usize, handler: Option<usize>) -> Self {
        assert!(entry < code.len(), "entry point out of bounds");
        if let Some(h) = handler {
            assert!(h < code.len(), "handler entry out of bounds");
        }
        Self {
            code,
            entry,
            handler,
        }
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn inst_at(&self, pc: usize) -> Option<&Inst> {
        self.code.get(pc)
    }

    /// First instruction executed by the thread.
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// Interrupt handler entry point, if the program has one.
    pub fn handler(&self) -> Option<usize> {
        self.handler
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> impl Iterator<Item = &Inst> {
        self.code.iter()
    }
}

/// A pending forward-branch fix-up handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Incremental builder for [`Program`]s with forward-label patching.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    code: Vec<Inst>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an instruction, returning its index.
    pub fn emit(&mut self, inst: Inst) -> usize {
        self.code.push(inst);
        self.code.len() - 1
    }

    /// Current instruction index (the index the *next* `emit` gets).
    pub fn here(&self) -> usize {
        self.code.len()
    }

    /// Emits a placeholder branch whose target is patched later via
    /// [`ProgramBuilder::bind`].
    pub fn emit_forward(&mut self, inst: Inst) -> Label {
        Label(self.emit(inst))
    }

    /// Patches the branch at `label` to jump to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the labelled instruction is not a control-flow
    /// instruction.
    pub fn bind(&mut self, label: Label) {
        let target = self.here();
        match &mut self.code[label.0] {
            Inst::Jump { target: t }
            | Inst::BranchEq { target: t, .. }
            | Inst::BranchLt { target: t, .. } => *t = target,
            other => panic!("label bound to non-branch instruction {other:?}"),
        }
    }

    /// Finishes the program.
    ///
    /// # Panics
    ///
    /// Panics if the entry points are out of bounds (see
    /// [`Program::new`]).
    pub fn build(self, entry: usize, handler: Option<usize>) -> Program {
        Program::new(self.code, entry, handler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Reg;

    #[test]
    fn forward_label_patches_branch() {
        let mut b = ProgramBuilder::new();
        let l = b.emit_forward(Inst::BranchEq {
            ra: Reg::new(0),
            rb: Reg::new(1),
            target: usize::MAX,
        });
        b.emit(Inst::Nop);
        b.bind(l);
        b.emit(Inst::Halt);
        let p = b.build(0, None);
        assert_eq!(
            p.inst_at(0),
            Some(&Inst::BranchEq {
                ra: Reg::new(0),
                rb: Reg::new(1),
                target: 2
            })
        );
    }

    #[test]
    #[should_panic(expected = "non-branch")]
    fn binding_non_branch_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.emit_forward(Inst::Nop);
        b.bind(l);
    }

    #[test]
    #[should_panic(expected = "entry point out of bounds")]
    fn bad_entry_panics() {
        Program::new(vec![Inst::Nop], 5, None);
    }

    #[test]
    fn iterate_and_len() {
        let mut b = ProgramBuilder::new();
        b.emit(Inst::Nop);
        b.emit(Inst::Halt);
        let p = b.build(0, None);
        assert_eq!(p.iter().count(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.handler(), None);
    }
}
