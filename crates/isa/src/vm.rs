//! The register-machine interpreter.

use crate::inst::{effective_addr, Inst};
use crate::layout::AddressMap;
use crate::program::Program;
use crate::{Addr, Word};

/// Data-memory interface the VM executes against.
///
/// The chunk engine implements this with a speculative view (committed
/// memory + per-chunk write buffers); tests use [`FlatMemory`].
pub trait DataMemory {
    /// Reads the word at `addr`.
    fn load(&mut self, addr: Addr) -> Word;
    /// Writes the word at `addr`.
    fn store(&mut self, addr: Addr, value: Word);
}

/// Uncached I/O port interface.
pub trait IoBus {
    /// Uncached load from a device port.
    fn io_load(&mut self, port: u16) -> Word;
    /// Uncached store to a device port.
    fn io_store(&mut self, port: u16, value: Word);
}

/// An I/O bus that reads zero and discards writes; for tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullIo;

impl IoBus for NullIo {
    fn io_load(&mut self, _port: u16) -> Word {
        0
    }
    fn io_store(&mut self, _port: u16, _value: Word) {}
}

/// A plain vector-backed memory (addresses wrap modulo capacity).
///
/// # Examples
///
/// ```
/// use delorean_isa::{DataMemory, FlatMemory};
/// let mut m = FlatMemory::new(16);
/// m.store(3, 99);
/// assert_eq!(m.load(3), 99);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatMemory {
    words: Vec<Word>,
}

impl FlatMemory {
    /// Allocates `words` zeroed words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn new(words: u64) -> Self {
        assert!(words > 0, "memory must be non-empty");
        Self {
            words: vec![0; words as usize],
        }
    }

    /// Capacity in words.
    pub fn len(&self) -> u64 {
        self.words.len() as u64
    }

    /// Whether the memory has zero capacity (never true).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    fn index(&self, addr: Addr) -> usize {
        (addr % self.words.len() as u64) as usize
    }
}

impl DataMemory for FlatMemory {
    fn load(&mut self, addr: Addr) -> Word {
        self.words[self.index(addr)]
    }
    fn store(&mut self, addr: Addr, value: Word) {
        let i = self.index(addr);
        self.words[i] = value;
    }
}

/// A single data-memory access performed by one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Word address accessed.
    pub addr: Addr,
    /// `true` for a store (or a successful CAS write).
    pub write: bool,
}

/// Classification of an executed step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// An ordinary cached instruction.
    Normal,
    /// An uncached / special-system instruction (already executed).
    Uncached,
    /// The thread has halted; nothing was executed.
    Halted,
}

/// Result of [`Vm::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepInfo {
    /// What kind of instruction retired.
    pub kind: StepKind,
    /// Up to two data-memory accesses (CAS performs a read and,
    /// on success, a write).
    pub mem_ops: [Option<MemOp>; 2],
    /// Whether the instruction was a taken or not-taken branch.
    pub is_branch: bool,
}

impl StepInfo {
    fn none(kind: StepKind) -> Self {
        Self {
            kind,
            mem_ops: [None, None],
            is_branch: false,
        }
    }
}

/// Architected state snapshot used for chunk checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmState {
    regs: [Word; 16],
    pc: usize,
    halted: bool,
    in_handler: bool,
    saved: Option<(usize, [Word; 16])>,
    retired: u64,
    hash: u64,
}

impl VmState {
    /// Whether the checkpointed state was inside an interrupt handler.
    pub fn in_handler(&self) -> bool {
        self.in_handler
    }

    /// Retired-instruction count at the checkpoint.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Serializes the architected state to a fixed little-endian byte
    /// layout (system checkpoint persistence).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 * 8 + 8 + 3 + 8 + 16 * 8 + 16);
        for &r in &self.regs {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&(self.pc as u64).to_le_bytes());
        out.push(u8::from(self.halted));
        out.push(u8::from(self.in_handler));
        match &self.saved {
            None => out.push(0),
            Some((pc, regs)) => {
                out.push(1);
                out.extend_from_slice(&(*pc as u64).to_le_bytes());
                for r in regs {
                    out.extend_from_slice(&r.to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&self.retired.to_le_bytes());
        out.extend_from_slice(&self.hash.to_le_bytes());
        out
    }

    /// Deserializes a state written by [`VmState::to_bytes`]; `None` on
    /// malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let u64_at = |b: &[u8], p: &mut usize| -> Option<u64> {
            let v = u64::from_le_bytes(b.get(*p..*p + 8)?.try_into().ok()?);
            *p += 8;
            Some(v)
        };
        let mut regs = [0u64; 16];
        for r in &mut regs {
            *r = u64_at(bytes, &mut pos)?;
        }
        let pc = u64_at(bytes, &mut pos)? as usize;
        let halted = *bytes.get(pos)? != 0;
        let in_handler = *bytes.get(pos + 1)? != 0;
        let saved_flag = *bytes.get(pos + 2)?;
        pos += 3;
        let saved = match saved_flag {
            0 => None,
            1 => {
                let spc = u64_at(bytes, &mut pos)? as usize;
                let mut sregs = [0u64; 16];
                for r in &mut sregs {
                    *r = u64_at(bytes, &mut pos)?;
                }
                Some((spc, sregs))
            }
            _ => return None,
        };
        let retired = u64_at(bytes, &mut pos)?;
        let hash = u64_at(bytes, &mut pos)?;
        if pos != bytes.len() {
            return None;
        }
        Some(VmState {
            regs,
            pc,
            halted,
            in_handler,
            saved,
            retired,
            hash,
        })
    }
}

/// The interpreter for one hardware thread.
///
/// Register conventions used by the workload generators:
/// `r15` = thread id, `r13` = private base, `r12` = shared base,
/// `r9` = interrupt payload.
///
/// # Examples
///
/// ```
/// use delorean_isa::{layout::AddressMap, FlatMemory, Inst, NullIo, Program, Reg, Vm};
/// let prog = Program::new(vec![
///     Inst::Imm { rd: Reg::new(0), value: 5 },
///     Inst::Store { rs: Reg::new(0), base: Reg::new(13), offset: 0 },
///     Inst::Halt,
/// ], 0, None);
/// let map = AddressMap::new(1);
/// let mut vm = Vm::new(0, &map);
/// let mut mem = FlatMemory::new(map.total_words());
/// let mut io = NullIo;
/// while !vm.halted() {
///     vm.step(&prog, &mut mem, &mut io);
/// }
/// // Imm, Store and Halt all retire.
/// assert_eq!(vm.retired(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vm {
    regs: [Word; 16],
    pc: usize,
    halted: bool,
    in_handler: bool,
    saved: Option<(usize, [Word; 16])>,
    retired: u64,
    hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(h: &mut u64, x: u64) {
    *h = (*h ^ x).wrapping_mul(FNV_PRIME);
}

impl Vm {
    /// Creates a VM for thread `tid` with the conventional registers
    /// initialized from `map`. The program counter starts at zero; call
    /// [`Vm::set_pc`] with the program entry before stepping if the
    /// entry is non-zero.
    pub fn new(tid: u32, map: &AddressMap) -> Self {
        let mut regs = [0u64; 16];
        regs[15] = u64::from(tid);
        regs[13] = map.private_base(tid);
        regs[12] = map.shared_base();
        Self {
            regs,
            pc: 0,
            halted: false,
            in_handler: false,
            saved: None,
            retired: 0,
            hash: FNV_OFFSET,
        }
    }

    /// Sets the program counter (used to jump to a program's entry).
    pub fn set_pc(&mut self, pc: usize) {
        self.pc = pc;
    }

    /// Current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Whether the thread has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Whether the thread is inside an interrupt handler.
    pub fn in_handler(&self) -> bool {
        self.in_handler
    }

    /// Retired instruction count.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Rolling hash of the retired instruction stream, including loaded
    /// values; two runs replay deterministically iff these match.
    pub fn stream_hash(&self) -> u64 {
        self.hash
    }

    /// Reads a register (for tests and device glue).
    pub fn reg(&self, index: usize) -> Word {
        self.regs[index]
    }

    /// Takes an architected-state checkpoint.
    pub fn snapshot(&self) -> VmState {
        VmState {
            regs: self.regs,
            pc: self.pc,
            halted: self.halted,
            in_handler: self.in_handler,
            saved: self.saved,
            retired: self.retired,
            hash: self.hash,
        }
    }

    /// Restores a checkpoint taken by [`Vm::snapshot`] (chunk squash).
    pub fn restore(&mut self, s: &VmState) {
        self.regs = s.regs;
        self.pc = s.pc;
        self.halted = s.halted;
        self.in_handler = s.in_handler;
        self.saved = s.saved;
        self.retired = s.retired;
        self.hash = s.hash;
    }

    /// The next instruction to execute, if any.
    pub fn peek<'p>(&self, prog: &'p Program) -> Option<&'p Inst> {
        if self.halted {
            None
        } else {
            prog.inst_at(self.pc)
        }
    }

    /// Delivers an interrupt: banks the architected state and jumps to
    /// the program's handler with `payload` in `r9`.
    ///
    /// # Panics
    ///
    /// Panics if the program has no handler or the VM is already inside
    /// a handler (the platform delivers at chunk boundaries only, and
    /// queues while a handler runs).
    pub fn deliver_interrupt(&mut self, prog: &Program, payload: Word) {
        assert!(!self.in_handler, "nested interrupt delivery");
        let handler = prog.handler().expect("program has no interrupt handler");
        self.saved = Some((self.pc, self.regs));
        self.regs[9] = payload;
        self.pc = handler;
        self.in_handler = true;
        fold(&mut self.hash, 0x1157_u64);
        fold(&mut self.hash, payload);
    }

    /// Executes one instruction.
    ///
    /// Returns what happened; when the thread is halted this is a no-op
    /// reporting [`StepKind::Halted`].
    pub fn step(
        &mut self,
        prog: &Program,
        mem: &mut dyn DataMemory,
        io: &mut dyn IoBus,
    ) -> StepInfo {
        if self.halted {
            return StepInfo::none(StepKind::Halted);
        }
        let Some(&inst) = prog.inst_at(self.pc) else {
            self.halted = true;
            return StepInfo::none(StepKind::Halted);
        };
        let mut info = StepInfo::none(StepKind::Normal);
        let mut next_pc = self.pc + 1;
        fold(&mut self.hash, self.pc as u64);
        match inst {
            Inst::Imm { rd, value } => {
                self.regs[rd.index()] = value;
            }
            Inst::Alu { rd, ra, rb, op } => {
                let v = op.apply(self.regs[ra.index()], self.regs[rb.index()]);
                self.regs[rd.index()] = v;
                fold(&mut self.hash, v);
            }
            Inst::AddImm { rd, ra, imm } => {
                self.regs[rd.index()] = self.regs[ra.index()].wrapping_add(imm as u64);
            }
            Inst::Load { rd, base, offset } => {
                let addr = effective_addr(self.regs[base.index()], offset);
                let v = mem.load(addr);
                self.regs[rd.index()] = v;
                info.mem_ops[0] = Some(MemOp { addr, write: false });
                fold(&mut self.hash, addr);
                fold(&mut self.hash, v);
            }
            Inst::Store { rs, base, offset } => {
                let addr = effective_addr(self.regs[base.index()], offset);
                let v = self.regs[rs.index()];
                mem.store(addr, v);
                info.mem_ops[0] = Some(MemOp { addr, write: true });
                fold(&mut self.hash, addr);
                fold(&mut self.hash, v);
            }
            Inst::Cas {
                rd,
                base,
                offset,
                expected,
                desired,
            } => {
                let addr = effective_addr(self.regs[base.index()], offset);
                let cur = mem.load(addr);
                info.mem_ops[0] = Some(MemOp { addr, write: false });
                let ok = cur == self.regs[expected.index()];
                if ok {
                    mem.store(addr, self.regs[desired.index()]);
                    info.mem_ops[1] = Some(MemOp { addr, write: true });
                }
                self.regs[rd.index()] = u64::from(ok);
                fold(&mut self.hash, addr);
                fold(&mut self.hash, cur);
                fold(&mut self.hash, u64::from(ok));
            }
            Inst::Jump { target } => {
                next_pc = target;
                info.is_branch = true;
            }
            Inst::BranchEq { ra, rb, target } => {
                info.is_branch = true;
                if self.regs[ra.index()] == self.regs[rb.index()] {
                    next_pc = target;
                }
            }
            Inst::BranchLt { ra, rb, target } => {
                info.is_branch = true;
                if self.regs[ra.index()] < self.regs[rb.index()] {
                    next_pc = target;
                }
            }
            Inst::Fence => {}
            Inst::IoLoad { rd, port } => {
                let v = io.io_load(port);
                self.regs[rd.index()] = v;
                info.kind = StepKind::Uncached;
                fold(&mut self.hash, u64::from(port));
                fold(&mut self.hash, v);
            }
            Inst::IoStore { rs, port } => {
                io.io_store(port, self.regs[rs.index()]);
                info.kind = StepKind::Uncached;
                fold(&mut self.hash, u64::from(port));
                fold(&mut self.hash, self.regs[rs.index()]);
            }
            Inst::System { code } => {
                info.kind = StepKind::Uncached;
                fold(&mut self.hash, u64::from(code));
            }
            Inst::Iret => {
                let (pc, regs) = self
                    .saved
                    .take()
                    .expect("iret outside of interrupt handler");
                self.regs = regs;
                next_pc = pc;
                self.in_handler = false;
                info.is_branch = true;
            }
            Inst::Nop => {}
            Inst::Halt => {
                self.halted = true;
                self.retired += 1;
                return StepInfo::none(StepKind::Halted);
            }
        }
        self.pc = next_pc;
        self.retired += 1;
        info
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Reg;
    use crate::program::ProgramBuilder;

    fn map() -> AddressMap {
        AddressMap::new(2)
    }

    fn run(prog: &Program, steps: usize) -> (Vm, FlatMemory) {
        let m = map();
        let mut vm = Vm::new(0, &m);
        vm.set_pc(prog.entry());
        let mut mem = FlatMemory::new(m.total_words());
        let mut io = NullIo;
        for _ in 0..steps {
            if vm.halted() {
                break;
            }
            vm.step(prog, &mut mem, &mut io);
        }
        (vm, mem)
    }

    #[test]
    fn store_load_round_trip() {
        let mut b = ProgramBuilder::new();
        b.emit(Inst::Imm {
            rd: Reg::new(0),
            value: 42,
        });
        b.emit(Inst::Store {
            rs: Reg::new(0),
            base: Reg::new(13),
            offset: 5,
        });
        b.emit(Inst::Load {
            rd: Reg::new(1),
            base: Reg::new(13),
            offset: 5,
        });
        b.emit(Inst::Halt);
        let prog = b.build(0, None);
        let (vm, _) = run(&prog, 10);
        assert_eq!(vm.reg(1), 42);
        assert_eq!(vm.retired(), 4);
        assert!(vm.halted());
    }

    #[test]
    fn cas_success_and_failure() {
        let mut b = ProgramBuilder::new();
        b.emit(Inst::Imm {
            rd: Reg::new(1),
            value: 0,
        }); // expected
        b.emit(Inst::Imm {
            rd: Reg::new(2),
            value: 9,
        }); // desired
        b.emit(Inst::Cas {
            rd: Reg::new(3),
            base: Reg::new(13),
            offset: 0,
            expected: Reg::new(1),
            desired: Reg::new(2),
        });
        b.emit(Inst::Cas {
            rd: Reg::new(4),
            base: Reg::new(13),
            offset: 0,
            expected: Reg::new(1),
            desired: Reg::new(2),
        });
        b.emit(Inst::Halt);
        let prog = b.build(0, None);
        let (vm, mut mem) = run(&prog, 10);
        assert_eq!(vm.reg(3), 1, "first CAS succeeds");
        assert_eq!(vm.reg(4), 0, "second CAS fails");
        assert_eq!(mem.load(map().private_base(0)), 9);
    }

    #[test]
    fn branches_select_paths() {
        let mut b = ProgramBuilder::new();
        b.emit(Inst::Imm {
            rd: Reg::new(0),
            value: 3,
        });
        b.emit(Inst::Imm {
            rd: Reg::new(1),
            value: 3,
        });
        let l = b.emit_forward(Inst::BranchEq {
            ra: Reg::new(0),
            rb: Reg::new(1),
            target: usize::MAX,
        });
        b.emit(Inst::Imm {
            rd: Reg::new(2),
            value: 111,
        }); // skipped
        b.bind(l);
        b.emit(Inst::Halt);
        let prog = b.build(0, None);
        let (vm, _) = run(&prog, 10);
        assert_eq!(vm.reg(2), 0);
    }

    #[test]
    fn spin_loop_terminates_on_external_write() {
        // while mem[shared] == 0 {}  — step manually, flip the flag.
        let mut b = ProgramBuilder::new();
        let top = b.here();
        b.emit(Inst::Load {
            rd: Reg::new(0),
            base: Reg::new(12),
            offset: 0,
        });
        b.emit(Inst::Imm {
            rd: Reg::new(1),
            value: 0,
        });
        b.emit(Inst::BranchEq {
            ra: Reg::new(0),
            rb: Reg::new(1),
            target: top,
        });
        b.emit(Inst::Halt);
        let prog = b.build(0, None);
        let m = map();
        let mut vm = Vm::new(0, &m);
        let mut mem = FlatMemory::new(m.total_words());
        let mut io = NullIo;
        for _ in 0..9 {
            vm.step(&prog, &mut mem, &mut io);
        }
        assert!(!vm.halted());
        mem.store(m.shared_base(), 1);
        for _ in 0..4 {
            vm.step(&prog, &mut mem, &mut io);
        }
        assert!(vm.halted());
    }

    #[test]
    fn interrupt_banks_and_restores_state() {
        let mut b = ProgramBuilder::new();
        // main: r0 <- 7; loop: jump loop
        b.emit(Inst::Imm {
            rd: Reg::new(0),
            value: 7,
        });
        let lp = b.here();
        b.emit(Inst::Jump { target: lp });
        // handler: write payload to mailbox, iret
        let h = b.here();
        b.emit(Inst::Store {
            rs: Reg::new(9),
            base: Reg::new(13),
            offset: 1,
        });
        b.emit(Inst::Iret);
        let prog = b.build(0, Some(h));
        let m = map();
        let mut vm = Vm::new(0, &m);
        let mut mem = FlatMemory::new(m.total_words());
        let mut io = NullIo;
        vm.step(&prog, &mut mem, &mut io);
        vm.step(&prog, &mut mem, &mut io);
        let r0_before = vm.reg(0);
        vm.deliver_interrupt(&prog, 0xbeef);
        assert!(vm.in_handler());
        vm.step(&prog, &mut mem, &mut io); // store
        vm.step(&prog, &mut mem, &mut io); // iret
        assert!(!vm.in_handler());
        assert_eq!(vm.reg(0), r0_before, "registers restored after iret");
        assert_eq!(mem.load(m.private_base(0) + 1), 0xbeef);
    }

    #[test]
    fn vm_state_byte_round_trip() {
        let mut b = ProgramBuilder::new();
        b.emit(Inst::Imm {
            rd: Reg::new(0),
            value: 9,
        });
        let lp = b.here();
        b.emit(Inst::Jump { target: lp });
        let h = b.here();
        b.emit(Inst::Iret);
        let prog = b.build(0, Some(h));
        let m = map();
        let mut vm = Vm::new(1, &m);
        let mut mem = FlatMemory::new(m.total_words());
        let mut io = NullIo;
        vm.step(&prog, &mut mem, &mut io);
        // Plain state.
        let st = vm.snapshot();
        assert_eq!(VmState::from_bytes(&st.to_bytes()), Some(st.clone()));
        // Handler-banked state (exercises the `saved` branch).
        vm.deliver_interrupt(&prog, 0xabcd);
        let st = vm.snapshot();
        assert_eq!(VmState::from_bytes(&st.to_bytes()), Some(st));
        // Malformed inputs fail cleanly.
        assert_eq!(VmState::from_bytes(&[]), None);
        assert_eq!(VmState::from_bytes(&[0u8; 10]), None);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut b = ProgramBuilder::new();
        b.emit(Inst::Imm {
            rd: Reg::new(0),
            value: 1,
        });
        b.emit(Inst::Imm {
            rd: Reg::new(0),
            value: 2,
        });
        b.emit(Inst::Halt);
        let prog = b.build(0, None);
        let m = map();
        let mut vm = Vm::new(0, &m);
        let mut mem = FlatMemory::new(m.total_words());
        let mut io = NullIo;
        vm.step(&prog, &mut mem, &mut io);
        let snap = vm.snapshot();
        let hash_at_snap = vm.stream_hash();
        vm.step(&prog, &mut mem, &mut io);
        assert_ne!(vm.stream_hash(), hash_at_snap);
        vm.restore(&snap);
        assert_eq!(vm.stream_hash(), hash_at_snap);
        assert_eq!(vm.retired(), 1);
        assert_eq!(vm.reg(0), 1);
    }

    #[test]
    fn stream_hash_is_load_value_sensitive() {
        let mut b = ProgramBuilder::new();
        b.emit(Inst::Load {
            rd: Reg::new(0),
            base: Reg::new(12),
            offset: 0,
        });
        b.emit(Inst::Halt);
        let prog = b.build(0, None);
        let m = map();
        let mut io = NullIo;

        let mut vm1 = Vm::new(0, &m);
        let mut mem1 = FlatMemory::new(m.total_words());
        vm1.step(&prog, &mut mem1, &mut io);

        let mut vm2 = Vm::new(0, &m);
        let mut mem2 = FlatMemory::new(m.total_words());
        mem2.store(m.shared_base(), 5);
        vm2.step(&prog, &mut mem2, &mut io);

        assert_ne!(vm1.stream_hash(), vm2.stream_hash());
    }

    #[test]
    fn uncached_kinds_reported() {
        let mut b = ProgramBuilder::new();
        b.emit(Inst::IoLoad {
            rd: Reg::new(0),
            port: 2,
        });
        b.emit(Inst::System { code: 1 });
        b.emit(Inst::Halt);
        let prog = b.build(0, None);
        let m = map();
        let mut vm = Vm::new(0, &m);
        let mut mem = FlatMemory::new(m.total_words());
        let mut io = NullIo;
        assert_eq!(vm.step(&prog, &mut mem, &mut io).kind, StepKind::Uncached);
        assert_eq!(vm.step(&prog, &mut mem, &mut io).kind, StepKind::Uncached);
    }

    #[test]
    fn halted_step_is_noop() {
        let prog = Program::new(vec![Inst::Halt], 0, None);
        let m = map();
        let mut vm = Vm::new(0, &m);
        let mut mem = FlatMemory::new(m.total_words());
        let mut io = NullIo;
        vm.step(&prog, &mut mem, &mut io);
        let retired = vm.retired();
        assert_eq!(vm.step(&prog, &mut mem, &mut io).kind, StepKind::Halted);
        assert_eq!(vm.retired(), retired);
    }
}
