//! A small register ISA, interpreter and workload generators.
//!
//! DeLorean is evaluated on SPLASH-2, SPECjbb2000 and SPECweb2005 running
//! on the SESC/Simics simulators. Neither the simulators nor the binaries
//! are available, so this crate provides the synthetic equivalent: a tiny
//! deterministic register machine (the [`Vm`]) plus seeded *program
//! generators* ([`workload`]) that produce one multithreaded program per
//! application with the sharing/synchronization/system-activity profile
//! the paper attributes to it.
//!
//! The crucial property preserved by the substitution is that program
//! behaviour is **data dependent**: loaded values feed branches and
//! address computations, spinlocks really spin, and I/O loads return
//! device values — so the interleaving chosen by the memory system
//! genuinely changes execution, and deterministic replay is a falsifiable
//! property rather than a tautology.
//!
//! # Examples
//!
//! ```
//! use delorean_isa::{workload, layout::AddressMap, FlatMemory, NullIo, Vm};
//!
//! let map = AddressMap::new(2);
//! let prog = workload::catalog()[0].generate(0, 2, &map, 7);
//! let mut vm = Vm::new(0, &map);
//! let mut mem = FlatMemory::new(map.total_words());
//! let mut io = NullIo;
//! for _ in 0..1000 {
//!     vm.step(&prog, &mut mem, &mut io);
//! }
//! assert_eq!(vm.retired(), 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inst;
pub mod layout;
pub mod program;
pub mod vm;
pub mod workload;

pub use inst::{AluOp, Inst, Reg};
pub use program::{Program, ProgramBuilder};
pub use vm::{DataMemory, FlatMemory, IoBus, MemOp, NullIo, StepInfo, StepKind, Vm};

/// Machine word: every memory cell and register holds one.
pub type Word = u64;
/// Word-granular memory address.
pub type Addr = u64;
