//! Instruction set definition.

use crate::{Addr, Word};

/// One of the 16 general-purpose registers.
///
/// # Examples
///
/// ```
/// use delorean_isa::Reg;
/// let r = Reg::new(3);
/// assert_eq!(r.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 16;

    /// Creates a register reference.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Reg::COUNT`.
    pub const fn new(index: u8) -> Self {
        assert!((index as usize) < Self::COUNT, "register out of range");
        Reg(index)
    }

    /// The register number.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for Reg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Binary ALU operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise exclusive or.
    Xor,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Wrapping multiplication.
    Mul,
    /// A cheap mixing function (`(a ^ rotl(b, 13)).wrapping_mul(K)`)
    /// used by workloads to derive data-dependent addresses.
    Mix,
}

impl AluOp {
    /// Applies the operation.
    pub fn apply(self, a: Word, b: Word) -> Word {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Xor => a ^ b,
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mix => (a ^ b.rotate_left(13)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }
}

/// Instruction encoding.
///
/// Memory addresses are word granular and computed as
/// `regs[base] + offset` (wrapping). Control-flow targets are absolute
/// instruction indices into the owning [`Program`](crate::Program).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `rd <- value`.
    Imm {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        value: Word,
    },
    /// `rd <- op(ra, rb)`.
    Alu {
        /// Destination register.
        rd: Reg,
        /// First operand.
        ra: Reg,
        /// Second operand.
        rb: Reg,
        /// Operation.
        op: AluOp,
    },
    /// `rd <- ra + imm` (wrapping).
    AddImm {
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Immediate addend (two's complement).
        imm: i64,
    },
    /// `rd <- mem[regs[base] + offset]`.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset.
        offset: i64,
    },
    /// `mem[regs[base] + offset] <- rs`.
    Store {
        /// Source register.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset.
        offset: i64,
    },
    /// Atomic compare-and-swap on `mem[regs[base] + offset]`:
    /// if the current value equals `regs[expected]`, store
    /// `regs[desired]` and set `rd <- 1`; otherwise `rd <- 0`.
    Cas {
        /// Result register (1 on success).
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset.
        offset: i64,
        /// Register holding the expected value.
        expected: Reg,
        /// Register holding the replacement value.
        desired: Reg,
    },
    /// Unconditional jump to instruction index `target`.
    Jump {
        /// Absolute instruction index.
        target: usize,
    },
    /// Jump to `target` when `ra == rb`.
    BranchEq {
        /// First comparison register.
        ra: Reg,
        /// Second comparison register.
        rb: Reg,
        /// Absolute instruction index.
        target: usize,
    },
    /// Jump to `target` when `ra < rb` (unsigned).
    BranchLt {
        /// First comparison register.
        ra: Reg,
        /// Second comparison register.
        rb: Reg,
        /// Absolute instruction index.
        target: usize,
    },
    /// Memory fence (a no-op for the functional model; consistency
    /// models give it a timing meaning).
    Fence,
    /// Uncached load from an I/O port: `rd <- device[port]`.
    /// Truncates the running chunk deterministically (Section 4.2.2);
    /// the loaded value is recorded in the I/O log.
    IoLoad {
        /// Destination register.
        rd: Reg,
        /// Device port number.
        port: u16,
    },
    /// Uncached store to an I/O port (e.g. I/O initiation). Truncates
    /// the running chunk deterministically; not logged.
    IoStore {
        /// Source register.
        rs: Reg,
        /// Device port number.
        port: u16,
    },
    /// Special system instruction (frequency change, interrupt masking,
    /// ...). Truncates the running chunk deterministically; otherwise a
    /// no-op in the functional model.
    System {
        /// Operation code, carried for the stream hash only.
        code: u16,
    },
    /// Return from interrupt handler.
    Iret,
    /// No operation.
    Nop,
    /// Stop the thread.
    Halt,
}

impl Inst {
    /// Whether this instruction is "hard to undo" and must truncate the
    /// currently-running chunk *deterministically* before executing
    /// (uncached accesses and special system instructions,
    /// Section 4.2.2 of the paper).
    pub fn is_uncached(&self) -> bool {
        matches!(
            self,
            Inst::IoLoad { .. } | Inst::IoStore { .. } | Inst::System { .. }
        )
    }

    /// Whether this instruction reads or writes data memory.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::Cas { .. }
        )
    }
}

/// Computes the effective word address of a memory instruction.
pub fn effective_addr(base_value: Word, offset: i64) -> Addr {
    base_value.wrapping_add(offset as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display_and_index() {
        let r = Reg::new(15);
        assert_eq!(r.index(), 15);
        assert_eq!(r.to_string(), "r15");
    }

    #[test]
    #[should_panic(expected = "register out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(16);
    }

    #[test]
    fn alu_ops() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u64::MAX);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Mul.apply(7, 6), 42);
        // Mix must be a deterministic non-trivial mixing.
        assert_ne!(AluOp::Mix.apply(1, 2), AluOp::Mix.apply(2, 1));
    }

    #[test]
    fn uncached_classification() {
        assert!(Inst::IoLoad {
            rd: Reg::new(0),
            port: 1
        }
        .is_uncached());
        assert!(Inst::IoStore {
            rs: Reg::new(0),
            port: 1
        }
        .is_uncached());
        assert!(Inst::System { code: 3 }.is_uncached());
        assert!(!Inst::Nop.is_uncached());
        assert!(!Inst::Load {
            rd: Reg::new(0),
            base: Reg::new(1),
            offset: 0
        }
        .is_uncached());
    }

    #[test]
    fn mem_classification() {
        assert!(Inst::Load {
            rd: Reg::new(0),
            base: Reg::new(1),
            offset: 0
        }
        .is_mem());
        assert!(Inst::Store {
            rs: Reg::new(0),
            base: Reg::new(1),
            offset: 0
        }
        .is_mem());
        assert!(Inst::Cas {
            rd: Reg::new(0),
            base: Reg::new(1),
            offset: 0,
            expected: Reg::new(2),
            desired: Reg::new(3)
        }
        .is_mem());
        assert!(!Inst::Fence.is_mem());
    }

    #[test]
    fn effective_addr_wraps() {
        assert_eq!(effective_addr(10, -4), 6);
        assert_eq!(effective_addr(0, -1), u64::MAX);
    }
}
