//! Seeded multithreaded workload generators.
//!
//! Each paper application (11 SPLASH-2 codes, SPECjbb2000, SPECweb2005)
//! is modelled by a [`WorkloadSpec`]: a parameter vector controlling the
//! sharing pattern (shared/private mix, hot-region contention,
//! data-dependent addressing), synchronization (spinlock critical
//! sections with configurable skew, sense-reversing barriers) and system
//! activity (uncached I/O loads/stores, special system instructions).
//! [`WorkloadSpec::generate`] synthesizes a deterministic program per
//! thread from the spec and a seed.
//!
//! The parameters were chosen so the *relative* behaviour the paper
//! reports emerges: `radix` produces many conflicts spread over all
//! processors, `raytrace` concentrates squashes on a contended task
//! queue, `fft`/`lu`/`ocean` are barrier codes with few conflicts, and
//! the two commercial workloads add I/O, interrupts and system
//! instructions.

use crate::inst::{AluOp, Inst, Reg};
use crate::layout::{AddressMap, LOCK_COUNT};
use crate::program::{Program, ProgramBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Device port of the free-running timer (nondeterministic reads).
pub const PORT_TIMER: u16 = 0;
/// Device port of the device RNG.
pub const PORT_RNG: u16 = 1;
/// Device port used by I/O-initiation stores.
pub const PORT_STATUS: u16 = 2;

/// Workload category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// SPLASH-2-like scientific code (no system references).
    Splash,
    /// Commercial workload (I/O, system instructions, interrupts, DMA).
    Commercial,
}

/// Parameter vector describing one application.
///
/// # Examples
///
/// ```
/// use delorean_isa::workload;
/// let radix = workload::by_name("radix").unwrap();
/// assert!(radix.write_frac > 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Application name as the paper reports it.
    pub name: &'static str,
    /// SPLASH-2-like or commercial.
    pub kind: WorkloadKind,
    /// Fraction of body instructions that are data-memory ops.
    pub mem_frac: f64,
    /// Of memory ops, fraction directed at the shared region.
    pub shared_frac: f64,
    /// Of shared accesses, fraction that are writes.
    pub write_frac: f64,
    /// Of shared accesses, fraction aimed at the small hot region.
    pub hot_frac: f64,
    /// Size of the hot region in words (power of two).
    pub hot_words: u64,
    /// Shared-region working set in words (power of two).
    pub shared_span: u64,
    /// Of shared accesses, fraction that cross into other threads'
    /// partitions (the rest stay in the thread's own block of the
    /// shared region, like SPLASH-2's partitioned working sets —
    /// the knob that controls the true conflict rate).
    pub cross_frac: f64,
    /// Private-region working set in words (power of two).
    pub private_span: u64,
    /// Fraction of shared addresses that are data-dependent.
    pub irregular: f64,
    /// Approximate body instructions between critical sections
    /// (0 = no locks).
    pub lock_every: u32,
    /// Number of distinct locks used.
    pub lock_count: u64,
    /// Lock-choice skew: 0 = uniform, 1 = everyone hammers lock 0.
    pub lock_skew: f64,
    /// Instructions inside a critical section.
    pub crit_len: u32,
    /// Barrier every 2^k loop iterations (0 = no barriers; 1 = every
    /// iteration).
    pub barrier_every_iters: u32,
    /// Approximate body instructions between uncached I/O loads
    /// (0 = none).
    pub io_every: u32,
    /// Approximate body instructions between special system
    /// instructions (0 = none).
    pub sys_every: u32,
}

impl WorkloadSpec {
    /// A small, fast, lock-light spec for unit tests.
    pub fn test_spec() -> Self {
        WorkloadSpec {
            name: "test",
            kind: WorkloadKind::Splash,
            mem_frac: 0.4,
            shared_frac: 0.4,
            write_frac: 0.4,
            hot_frac: 0.1,
            hot_words: 16,
            shared_span: 1024,
            cross_frac: 0.3,
            private_span: 1024,
            irregular: 0.5,
            lock_every: 200,
            lock_count: 8,
            lock_skew: 0.2,
            crit_len: 8,
            barrier_every_iters: 0,
            io_every: 0,
            sys_every: 0,
        }
    }

    /// Generates the deterministic program thread `tid` of `n_threads`
    /// executes, seeded by `seed`.
    ///
    /// The program loops forever (the simulator stops each processor at
    /// its retired-instruction budget) and always contains an interrupt
    /// handler.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= n_threads` or the spec's spans exceed the
    /// layout regions.
    pub fn generate(&self, tid: u32, n_threads: u32, map: &AddressMap, seed: u64) -> Program {
        assert!(tid < n_threads, "tid out of range");
        assert!(
            self.shared_span <= crate::layout::SHARED_WORDS,
            "shared span too large"
        );
        assert!(
            self.private_span <= crate::layout::PRIVATE_WORDS,
            "private span too large"
        );
        assert!(self.lock_count <= LOCK_COUNT, "too many locks");
        Gen::new(self, tid, n_threads, map, seed).run()
    }

    /// Generates one program per thread.
    pub fn programs(&self, n_threads: u32, map: &AddressMap, seed: u64) -> Vec<Program> {
        (0..n_threads)
            .map(|t| self.generate(t, n_threads, map, seed))
            .collect()
    }
}

const R_ZERO: Reg = Reg::new(0);
const R_T1: Reg = Reg::new(1);
const R_T2: Reg = Reg::new(2);
const R_T3: Reg = Reg::new(3);
const R_T4: Reg = Reg::new(4);
const R_ADDR: Reg = Reg::new(5);
const R_SENSE: Reg = Reg::new(6);
const R_T7: Reg = Reg::new(7);
const R_IO: Reg = Reg::new(8);
const R_PAYLOAD: Reg = Reg::new(9);
const R_ACC: Reg = Reg::new(10);
const R_IDX: Reg = Reg::new(11);
const R_SHARED: Reg = Reg::new(12);
const R_PRIV: Reg = Reg::new(13);
const R_ITER: Reg = Reg::new(14);

/// Blocks per loop iteration (sized so the static loop body is long
/// enough that every `*_every` site frequency in the catalog fires at
/// least once per iteration).
const BLOCKS_PER_ITER: u32 = 64;
/// Approximate instructions per block.
const BLOCK_LEN: u32 = 20;

struct Gen<'a> {
    spec: &'a WorkloadSpec,
    tid: u32,
    n_threads: u32,
    map: &'a AddressMap,
    rng: SmallRng,
    b: ProgramBuilder,
    since_lock: u32,
    since_io: u32,
    since_sys: u32,
}

impl<'a> Gen<'a> {
    fn new(
        spec: &'a WorkloadSpec,
        tid: u32,
        n_threads: u32,
        map: &'a AddressMap,
        seed: u64,
    ) -> Self {
        let rng =
            SmallRng::seed_from_u64(seed ^ (u64::from(tid).wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        Gen {
            spec,
            tid,
            n_threads,
            map,
            rng,
            b: ProgramBuilder::new(),
            since_lock: 0,
            since_io: 0,
            since_sys: 0,
        }
    }

    fn run(mut self) -> Program {
        // Prologue.
        self.b.emit(Inst::Imm {
            rd: R_ZERO,
            value: 0,
        });
        self.b.emit(Inst::Imm {
            rd: R_ITER,
            value: 0,
        });
        self.b.emit(Inst::Imm {
            rd: R_SENSE,
            value: 0,
        });
        let acc0 = self.rng.gen::<u64>();
        self.b.emit(Inst::Imm {
            rd: R_ACC,
            value: acc0,
        });
        self.b.emit(Inst::Imm {
            rd: R_IDX,
            value: acc0 ^ u64::from(self.tid),
        });
        let loop_top = self.b.here();

        // Static loop bodies are ~BLOCKS_PER_ITER x BLOCK_LEN
        // instructions; critical-section periods beyond that are
        // realized with iteration guards.
        let lock_spacing = self.spec.lock_every.min(1_100);
        let lock_factor = if self.spec.lock_every == 0 {
            1
        } else {
            self.spec
                .lock_every
                .div_ceil(lock_spacing)
                .next_power_of_two()
        };
        for block in 0..BLOCKS_PER_ITER {
            self.body_block();
            if self.spec.lock_every > 0 && self.since_lock >= lock_spacing {
                self.since_lock = 0;
                self.guarded_critical_section(block, lock_factor);
            }
            if self.spec.io_every > 0 && self.since_io >= self.spec.io_every {
                self.since_io = 0;
                self.guarded_io_site(block);
            }
            if self.spec.sys_every > 0 && self.since_sys >= self.spec.sys_every {
                self.since_sys = 0;
                self.guarded_sys_site(block);
            }
        }

        if self.spec.barrier_every_iters > 0 {
            self.guarded_barrier();
        }

        self.b.emit(Inst::AddImm {
            rd: R_ITER,
            ra: R_ITER,
            imm: 1,
        });
        // Refresh the irregular index stream so iterations diverge.
        self.b.emit(Inst::Alu {
            rd: R_IDX,
            ra: R_IDX,
            rb: R_ITER,
            op: AluOp::Mix,
        });
        self.b.emit(Inst::Jump { target: loop_top });

        // Interrupt handler: mix the payload and a timer read into the
        // per-thread mailbox.
        let handler = self.b.here();
        self.b.emit(Inst::IoLoad {
            rd: R_IO,
            port: PORT_TIMER,
        });
        self.b.emit(Inst::Imm {
            rd: R_ADDR,
            value: self.map.mailbox_base(self.tid),
        });
        self.b.emit(Inst::Load {
            rd: R_T7,
            base: R_ADDR,
            offset: 0,
        });
        self.b.emit(Inst::Alu {
            rd: R_T7,
            ra: R_T7,
            rb: R_PAYLOAD,
            op: AluOp::Mix,
        });
        self.b.emit(Inst::Alu {
            rd: R_T7,
            ra: R_T7,
            rb: R_IO,
            op: AluOp::Add,
        });
        self.b.emit(Inst::Store {
            rs: R_T7,
            base: R_ADDR,
            offset: 0,
        });
        self.b.emit(Inst::Iret);

        self.b.build(0, Some(handler))
    }

    /// One straight-line block of ~BLOCK_LEN instructions ending with a
    /// small data-dependent hammock.
    fn body_block(&mut self) {
        let mut emitted = 0u32;
        while emitted + 6 < BLOCK_LEN {
            if self.rng.gen_bool(self.spec.mem_frac) {
                emitted += self.mem_op();
            } else {
                emitted += self.alu_op();
            }
        }
        // Data-dependent hammock: skip one op when acc is even.
        self.b.emit(Inst::Imm { rd: R_T1, value: 1 });
        self.b.emit(Inst::Alu {
            rd: R_T2,
            ra: R_ACC,
            rb: R_T1,
            op: AluOp::And,
        });
        let skip = self.b.emit_forward(Inst::BranchEq {
            ra: R_T2,
            rb: R_ZERO,
            target: 0,
        });
        self.b.emit(Inst::Alu {
            rd: R_ACC,
            ra: R_ACC,
            rb: R_T1,
            op: AluOp::Add,
        });
        self.b.bind(skip);
        emitted += 4;
        self.since_lock += emitted;
        self.since_io += emitted;
        self.since_sys += emitted;
    }

    fn alu_op(&mut self) -> u32 {
        let ops = [AluOp::Add, AluOp::Xor, AluOp::Mul, AluOp::Mix, AluOp::Sub];
        let op = ops[self.rng.gen_range(0..ops.len())];
        self.b.emit(Inst::Alu {
            rd: R_ACC,
            ra: R_ACC,
            rb: R_IDX,
            op,
        });
        1
    }

    fn mem_op(&mut self) -> u32 {
        let shared = self.rng.gen_bool(self.spec.shared_frac);
        if shared {
            self.shared_access()
        } else {
            self.private_access()
        }
    }

    fn private_access(&mut self) -> u32 {
        let off = self.rng.gen_range(0..self.spec.private_span) as i64;
        if self.rng.gen_bool(0.4) {
            self.b.emit(Inst::Store {
                rs: R_ACC,
                base: R_PRIV,
                offset: off,
            });
            1
        } else {
            self.b.emit(Inst::Load {
                rd: R_T3,
                base: R_PRIV,
                offset: off,
            });
            self.b.emit(Inst::Alu {
                rd: R_ACC,
                ra: R_ACC,
                rb: R_T3,
                op: AluOp::Xor,
            });
            2
        }
    }

    fn shared_access(&mut self) -> u32 {
        let write = self.rng.gen_bool(self.spec.write_frac);
        let hot = self.spec.hot_frac > 0.0 && self.rng.gen_bool(self.spec.hot_frac);
        // Most shared accesses stay inside the thread's own partition of
        // the shared region (SPLASH-style block decomposition); only
        // `cross_frac` of them reach other threads' data.
        let cross = hot || self.rng.gen_bool(self.spec.cross_frac);
        let part_span =
            (self.spec.shared_span / u64::from(self.n_threads.next_power_of_two())).max(64);
        let (span, base_off) = if hot {
            (self.spec.hot_words, 0)
        } else if cross {
            (self.spec.shared_span, 0)
        } else {
            (part_span, part_span * u64::from(self.tid))
        };
        let irregular = !hot && self.rng.gen_bool(self.spec.irregular);
        if irregular {
            // addr = shared_base + base_off + (mix(idx, salt) & (span-1))
            let salt = self.rng.gen::<u64>();
            self.b.emit(Inst::Imm {
                rd: R_T4,
                value: salt,
            });
            self.b.emit(Inst::Alu {
                rd: R_ADDR,
                ra: R_IDX,
                rb: R_T4,
                op: AluOp::Mix,
            });
            self.b.emit(Inst::Imm {
                rd: R_T4,
                value: span - 1,
            });
            self.b.emit(Inst::Alu {
                rd: R_ADDR,
                ra: R_ADDR,
                rb: R_T4,
                op: AluOp::And,
            });
            self.b.emit(Inst::Alu {
                rd: R_ADDR,
                ra: R_ADDR,
                rb: R_SHARED,
                op: AluOp::Add,
            });
            if base_off != 0 {
                self.b.emit(Inst::AddImm {
                    rd: R_ADDR,
                    ra: R_ADDR,
                    imm: base_off as i64,
                });
            }
            if write {
                self.b.emit(Inst::Store {
                    rs: R_ACC,
                    base: R_ADDR,
                    offset: 0,
                });
                6
            } else {
                self.b.emit(Inst::Load {
                    rd: R_T3,
                    base: R_ADDR,
                    offset: 0,
                });
                self.b.emit(Inst::Alu {
                    rd: R_ACC,
                    ra: R_ACC,
                    rb: R_T3,
                    op: AluOp::Xor,
                });
                7
            }
        } else {
            let off = (base_off + self.rng.gen_range(0..span)) as i64;
            if write {
                self.b.emit(Inst::Store {
                    rs: R_ACC,
                    base: R_SHARED,
                    offset: off,
                });
                1
            } else {
                self.b.emit(Inst::Load {
                    rd: R_T3,
                    base: R_SHARED,
                    offset: off,
                });
                self.b.emit(Inst::Alu {
                    rd: R_ACC,
                    ra: R_ACC,
                    rb: R_T3,
                    op: AluOp::Xor,
                });
                2
            }
        }
    }

    /// Spinlock-protected critical section (CAS acquire, store release).
    fn critical_section(&mut self) {
        let lock = self.pick_lock();
        let lock_addr = self.map.lock_addr(lock);
        self.b.emit(Inst::Imm {
            rd: R_ADDR,
            value: lock_addr,
        });
        self.b.emit(Inst::Imm { rd: R_T1, value: 0 });
        self.b.emit(Inst::Imm { rd: R_T2, value: 1 });
        let spin = self.b.here();
        self.b.emit(Inst::Cas {
            rd: R_T3,
            base: R_ADDR,
            offset: 0,
            expected: R_T1,
            desired: R_T2,
        });
        self.b.emit(Inst::BranchEq {
            ra: R_T3,
            rb: R_ZERO,
            target: spin,
        });
        // Critical body: read-modify-write the lock's data words.
        let body_ops = (self.spec.crit_len / 3).max(1);
        for k in 0..body_ops {
            let off = 1 + (k as i64 % 3);
            self.b.emit(Inst::Load {
                rd: R_T4,
                base: R_ADDR,
                offset: off,
            });
            self.b.emit(Inst::Alu {
                rd: R_T4,
                ra: R_T4,
                rb: R_ACC,
                op: AluOp::Add,
            });
            self.b.emit(Inst::Store {
                rs: R_T4,
                base: R_ADDR,
                offset: off,
            });
        }
        // Release.
        self.b.emit(Inst::Store {
            rs: R_ZERO,
            base: R_ADDR,
            offset: 0,
        });
    }

    fn pick_lock(&mut self) -> u64 {
        if self.rng.gen_bool(self.spec.lock_skew) {
            0
        } else {
            self.rng.gen_range(0..self.spec.lock_count)
        }
    }

    /// Sense-reversing barrier, executed every 2^(barrier_every_iters-1)
    /// iterations.
    fn guarded_barrier(&mut self) {
        let mask = (1u64 << (self.spec.barrier_every_iters - 1)) - 1;
        self.b.emit(Inst::Imm {
            rd: R_T1,
            value: mask,
        });
        self.b.emit(Inst::Alu {
            rd: R_T2,
            ra: R_ITER,
            rb: R_T1,
            op: AluOp::And,
        });
        let to_bar = self.b.emit_forward(Inst::BranchEq {
            ra: R_T2,
            rb: R_ZERO,
            target: 0,
        });
        let skip_all = self.b.emit_forward(Inst::Jump { target: 0 });
        self.b.bind(to_bar);

        let bar = self.map.barrier_base();
        // Flip local sense.
        self.b.emit(Inst::Imm { rd: R_T1, value: 1 });
        self.b.emit(Inst::Alu {
            rd: R_SENSE,
            ra: R_SENSE,
            rb: R_T1,
            op: AluOp::Xor,
        });
        self.b.emit(Inst::Imm {
            rd: R_ADDR,
            value: bar,
        });
        // Atomic increment of the arrival count.
        let inc = self.b.here();
        self.b.emit(Inst::Load {
            rd: R_T2,
            base: R_ADDR,
            offset: 0,
        });
        self.b.emit(Inst::Alu {
            rd: R_T3,
            ra: R_T2,
            rb: R_T1,
            op: AluOp::Add,
        });
        self.b.emit(Inst::Cas {
            rd: R_T4,
            base: R_ADDR,
            offset: 0,
            expected: R_T2,
            desired: R_T3,
        });
        self.b.emit(Inst::BranchEq {
            ra: R_T4,
            rb: R_ZERO,
            target: inc,
        });
        // Last arriver resets the count and publishes the new sense.
        self.b.emit(Inst::Imm {
            rd: R_T7,
            value: u64::from(self.n_threads),
        });
        let last = self.b.emit_forward(Inst::BranchEq {
            ra: R_T3,
            rb: R_T7,
            target: 0,
        });
        // Waiters spin on the sense word.
        let wait = self.b.here();
        self.b.emit(Inst::Load {
            rd: R_T2,
            base: R_ADDR,
            offset: 1,
        });
        let done_w = self.b.emit_forward(Inst::BranchEq {
            ra: R_T2,
            rb: R_SENSE,
            target: 0,
        });
        self.b.emit(Inst::Jump { target: wait });
        self.b.bind(last);
        self.b.emit(Inst::Store {
            rs: R_ZERO,
            base: R_ADDR,
            offset: 0,
        });
        self.b.emit(Inst::Store {
            rs: R_SENSE,
            base: R_ADDR,
            offset: 1,
        });
        self.b.bind(done_w);
        self.b.bind(skip_all);
    }

    /// Emits a site guard: the guarded body only executes on the
    /// iterations where `iter % period == block % period` (period a
    /// power of two), so static sites in the loop body translate to
    /// realistic runtime periods — tens of kilo-instructions for I/O
    /// and system instructions, a few kilo-instructions for critical
    /// sections.
    fn site_guard(&mut self, block: u32, period: u32) -> crate::program::Label {
        debug_assert!(period.is_power_of_two());
        self.b.emit(Inst::Imm {
            rd: R_T1,
            value: u64::from(period - 1),
        });
        self.b.emit(Inst::Alu {
            rd: R_T2,
            ra: R_ITER,
            rb: R_T1,
            op: AluOp::And,
        });
        self.b.emit(Inst::Imm {
            rd: R_T1,
            value: u64::from(block % period),
        });
        let to_site = self.b.emit_forward(Inst::BranchEq {
            ra: R_T2,
            rb: R_T1,
            target: 0,
        });
        let skip = self.b.emit_forward(Inst::Jump { target: 0 });
        self.b.bind(to_site);
        skip
    }

    fn guarded_io_site(&mut self, block: u32) {
        let skip = self.site_guard(block, 32);
        self.io_site(block);
        self.b.bind(skip);
    }

    fn guarded_sys_site(&mut self, block: u32) {
        let skip = self.site_guard(block, 32);
        self.b.emit(Inst::System {
            code: (block % 7) as u16,
        });
        self.b.bind(skip);
    }

    /// Critical sections with runtime periods beyond the static loop
    /// body length are emitted at a denser static spacing and guarded
    /// to fire only every `factor` iterations.
    fn guarded_critical_section(&mut self, block: u32, factor: u32) {
        if factor <= 1 {
            self.critical_section();
            return;
        }
        let skip = self.site_guard(block, factor);
        self.critical_section();
        self.b.bind(skip);
    }

    fn io_site(&mut self, block: u32) {
        self.b.emit(Inst::IoLoad {
            rd: R_IO,
            port: PORT_RNG,
        });
        self.b.emit(Inst::Alu {
            rd: R_ACC,
            ra: R_ACC,
            rb: R_IO,
            op: AluOp::Mix,
        });
        // Branch on the device value: the replayed path must match.
        self.b.emit(Inst::Imm { rd: R_T1, value: 1 });
        self.b.emit(Inst::Alu {
            rd: R_T2,
            ra: R_IO,
            rb: R_T1,
            op: AluOp::And,
        });
        let skip = self.b.emit_forward(Inst::BranchEq {
            ra: R_T2,
            rb: R_ZERO,
            target: 0,
        });
        self.b.emit(Inst::Alu {
            rd: R_ACC,
            ra: R_ACC,
            rb: R_ACC,
            op: AluOp::Add,
        });
        self.b.bind(skip);
        if block.is_multiple_of(3) {
            self.b.emit(Inst::IoStore {
                rs: R_ACC,
                port: PORT_STATUS,
            });
        }
    }
}

/// The 13 applications of the paper's evaluation, in its reporting
/// order: the 11 SPLASH-2 codes, then SPECjbb2000 and SPECweb2005.
pub fn catalog() -> &'static [WorkloadSpec] {
    &CATALOG
}

/// The SPLASH-2 subset (used for Figure 12, which omits the commercial
/// workloads).
pub fn splash2() -> &'static [WorkloadSpec] {
    &CATALOG[..11]
}

/// The two commercial workloads.
pub fn commercial() -> &'static [WorkloadSpec] {
    &CATALOG[11..]
}

/// Looks up a workload by paper name.
pub fn by_name(name: &str) -> Option<&'static WorkloadSpec> {
    CATALOG.iter().find(|w| w.name == name)
}

macro_rules! splash {
    ($name:literal, mem $mem:literal, sh $sh:literal, wr $wr:literal,
     hot $hot:literal / $hotw:literal, span $span:literal, cross $cross:literal,
     irr $irr:literal,
     lock $lev:literal / $lkc:literal / $skew:literal / $crit:literal,
     bar $bar:literal) => {
        WorkloadSpec {
            name: $name,
            kind: WorkloadKind::Splash,
            mem_frac: $mem,
            shared_frac: $sh,
            write_frac: $wr,
            hot_frac: $hot,
            hot_words: $hotw,
            shared_span: $span,
            cross_frac: $cross,
            private_span: 8192,
            irregular: $irr,
            lock_every: $lev,
            lock_count: $lkc,
            lock_skew: $skew,
            crit_len: $crit,
            barrier_every_iters: $bar,
            io_every: 0,
            sys_every: 0,
        }
    };
}

static CATALOG: [WorkloadSpec; 13] = [
    splash!("barnes",    mem 0.35, sh 0.30, wr 0.25, hot 0.006/64,  span 16384, cross 0.006, irr 0.6,
            lock 2500/64/0.15/12, bar 0),
    splash!("cholesky",  mem 0.35, sh 0.35, wr 0.30, hot 0.005/128, span 16384, cross 0.006, irr 0.5,
            lock 2600/48/0.2/16, bar 0),
    splash!("fft",       mem 0.40, sh 0.45, wr 0.40, hot 0.0/16,   span 32768, cross 0.010, irr 0.3,
            lock 0/1/0.0/0, bar 7),
    splash!("fmm",       mem 0.35, sh 0.30, wr 0.25, hot 0.006/64,  span 16384, cross 0.006, irr 0.7,
            lock 2200/64/0.15/12, bar 0),
    splash!("lu",        mem 0.40, sh 0.35, wr 0.30, hot 0.0/16,   span 16384, cross 0.004, irr 0.2,
            lock 0/1/0.0/0, bar 8),
    splash!("ocean",     mem 0.45, sh 0.40, wr 0.35, hot 0.005/32,  span 32768, cross 0.006, irr 0.2,
            lock 0/1/0.0/0, bar 6),
    splash!("radiosity", mem 0.35, sh 0.35, wr 0.30, hot 0.008/64,  span 16384, cross 0.010, irr 0.8,
            lock 2400/48/0.2/14, bar 0),
    splash!("radix",     mem 0.45, sh 0.50, wr 0.60, hot 0.0/16,   span 32768, cross 0.008, irr 0.9,
            lock 0/1/0.0/0, bar 8),
    splash!("raytrace",  mem 0.35, sh 0.30, wr 0.25, hot 0.010/16,  span 16384, cross 0.006, irr 0.5,
            lock 4400/8/0.5/10, bar 0),
    splash!("water-ns",  mem 0.35, sh 0.25, wr 0.20, hot 0.005/32,  span 16384, cross 0.005, irr 0.3,
            lock 2500/64/0.1/10, bar 8),
    splash!("water-sp",  mem 0.35, sh 0.20, wr 0.15, hot 0.004/32,  span 16384, cross 0.004, irr 0.3,
            lock 2500/64/0.1/10, bar 8),
    WorkloadSpec {
        name: "sjbb2k",
        kind: WorkloadKind::Commercial,
        mem_frac: 0.40,
        shared_frac: 0.35,
        write_frac: 0.30,
        hot_frac: 0.010,
        hot_words: 64,
        shared_span: 32768,
        cross_frac: 0.020,
        private_span: 8192,
        irregular: 0.6,
        lock_every: 2000,
        lock_count: 64,
        lock_skew: 0.2,
        crit_len: 16,
        barrier_every_iters: 0,
        io_every: 900,
        sys_every: 1200,
    },
    WorkloadSpec {
        name: "sweb2005",
        kind: WorkloadKind::Commercial,
        mem_frac: 0.40,
        shared_frac: 0.40,
        write_frac: 0.30,
        hot_frac: 0.015,
        hot_words: 64,
        shared_span: 32768,
        cross_frac: 0.025,
        private_span: 8192,
        irregular: 0.6,
        lock_every: 1600,
        lock_count: 64,
        lock_skew: 0.3,
        crit_len: 16,
        barrier_every_iters: 0,
        io_every: 600,
        sys_every: 900,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{FlatMemory, NullIo, Vm};

    #[test]
    fn catalog_has_thirteen_named_apps() {
        assert_eq!(catalog().len(), 13);
        assert_eq!(splash2().len(), 11);
        assert_eq!(commercial().len(), 2);
        for w in catalog() {
            assert!(!w.name.is_empty());
        }
        assert!(by_name("radix").is_some());
        assert!(
            by_name("volrend").is_none(),
            "volrend fails in the paper's infra too"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let map = AddressMap::new(4);
        let spec = by_name("barnes").unwrap();
        let a = spec.generate(1, 4, &map, 99);
        let b = spec.generate(1, 4, &map, 99);
        assert_eq!(a, b);
        let c = spec.generate(1, 4, &map, 100);
        assert_ne!(a, c, "different seeds give different programs");
        let d = spec.generate(2, 4, &map, 99);
        assert_ne!(a, d, "different threads get different streams");
    }

    #[test]
    fn programs_execute_for_long_budgets() {
        let map = AddressMap::new(2);
        for spec in catalog() {
            let prog = spec.generate(0, 2, &map, 5);
            let mut vm = Vm::new(0, &map);
            vm.set_pc(prog.entry());
            let mut mem = FlatMemory::new(map.total_words());
            let mut io = NullIo;
            for _ in 0..20_000 {
                let info = vm.step(&prog, &mut mem, &mut io);
                assert_ne!(
                    info.kind,
                    crate::vm::StepKind::Halted,
                    "{} halted",
                    spec.name
                );
            }
            assert_eq!(vm.retired(), 20_000);
        }
    }

    #[test]
    fn commercial_apps_issue_io() {
        let map = AddressMap::new(1);
        let spec = by_name("sweb2005").unwrap();
        let prog = spec.generate(0, 1, &map, 3);
        let io_count = prog
            .iter()
            .filter(|i| matches!(i, Inst::IoLoad { .. } | Inst::IoStore { .. }))
            .count();
        // The handler contributes one IoLoad; commercial bodies add more.
        assert!(io_count > 1, "expected I/O sites, found {io_count}");
        let sys = prog
            .iter()
            .filter(|i| matches!(i, Inst::System { .. }))
            .count();
        assert!(sys > 0);
    }

    #[test]
    fn splash_apps_have_no_body_io() {
        let map = AddressMap::new(1);
        let spec = by_name("lu").unwrap();
        let prog = spec.generate(0, 1, &map, 3);
        let body_io = prog
            .iter()
            .filter(|i| matches!(i, Inst::IoLoad { .. } | Inst::IoStore { .. }))
            .count();
        assert_eq!(body_io, 1, "only the handler's timer read");
    }

    #[test]
    fn barrier_workload_synchronizes_two_threads() {
        // Run two VMs round-robin; both must get past the first barrier.
        let map = AddressMap::new(2);
        let spec = by_name("fft").unwrap();
        let progs = spec.programs(2, &map, 11);
        let mut vms: Vec<Vm> = (0..2).map(|t| Vm::new(t, &map)).collect();
        let mut mem = FlatMemory::new(map.total_words());
        let mut io = NullIo;
        for _ in 0..400_000 {
            for t in 0..2 {
                vms[t].step(&progs[t], &mut mem, &mut io);
            }
        }
        // Both threads made progress past multiple iterations: their
        // iteration counters advanced.
        assert!(vms[0].reg(14) > 1, "thread 0 stuck at barrier");
        assert!(vms[1].reg(14) > 1, "thread 1 stuck at barrier");
    }

    #[test]
    fn locks_provide_mutual_exclusion_under_serial_interleaving() {
        // With chunk-atomic CAS semantics, round-robin single-step
        // interleaving must never see both threads inside the same
        // critical section: we check the lock word is always 0 or 1.
        let map = AddressMap::new(2);
        let spec = by_name("raytrace").unwrap();
        let progs = spec.programs(2, &map, 17);
        let mut vms: Vec<Vm> = (0..2).map(|t| Vm::new(t, &map)).collect();
        let mut mem = FlatMemory::new(map.total_words());
        let mut io = NullIo;
        use crate::vm::DataMemory;
        for _ in 0..100_000 {
            for t in 0..2 {
                vms[t].step(&progs[t], &mut mem, &mut io);
            }
            let l = mem.load(map.lock_addr(0));
            assert!(l <= 1, "lock word corrupted: {l}");
        }
    }
}
