//! Address-space layout shared by all workloads.
//!
//! Memory is word granular (one [`Word`](crate::Word) per address). The
//! map places, in order: one private region per thread, the shared data
//! region, the lock array, the barrier words, per-thread interrupt
//! mailboxes and the DMA target buffer.

use crate::Addr;

/// Words in each thread's private region (128 KiB at 8 B/word).
pub const PRIVATE_WORDS: u64 = 1 << 14;
/// Words in the shared data region (512 KiB).
pub const SHARED_WORDS: u64 = 1 << 16;
/// Number of lock slots.
pub const LOCK_COUNT: u64 = 256;
/// Word stride between lock slots (keeps locks on distinct cache lines).
pub const LOCK_STRIDE: u64 = 4;
/// Words reserved for the barrier (count, sense, generation, spare).
pub const BARRIER_WORDS: u64 = 4;
/// Words per per-thread interrupt mailbox.
pub const MAILBOX_WORDS: u64 = 16;
/// Words in the DMA target buffer.
pub const DMA_WORDS: u64 = 1024;

/// Computed bases of every region for a given thread count.
///
/// # Examples
///
/// ```
/// use delorean_isa::layout::AddressMap;
/// let map = AddressMap::new(4);
/// assert!(map.shared_base() > map.private_base(3));
/// assert!(map.total_words() > map.dma_base());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    threads: u32,
    shared_base: Addr,
    locks_base: Addr,
    barrier_base: Addr,
    mailbox_base: Addr,
    dma_base: Addr,
    total: u64,
}

impl AddressMap {
    /// Builds the map for `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: u32) -> Self {
        assert!(threads > 0, "thread count must be positive");
        let shared_base = u64::from(threads) * PRIVATE_WORDS;
        let locks_base = shared_base + SHARED_WORDS;
        let barrier_base = locks_base + LOCK_COUNT * LOCK_STRIDE;
        let mailbox_base = barrier_base + BARRIER_WORDS;
        let dma_base = mailbox_base + u64::from(threads) * MAILBOX_WORDS;
        let total = dma_base + DMA_WORDS;
        Self {
            threads,
            shared_base,
            locks_base,
            barrier_base,
            mailbox_base,
            dma_base,
            total,
        }
    }

    /// Number of threads the map was built for.
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Base of thread `tid`'s private region.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn private_base(&self, tid: u32) -> Addr {
        assert!(tid < self.threads, "thread id out of range");
        u64::from(tid) * PRIVATE_WORDS
    }

    /// Base of the shared data region.
    pub fn shared_base(&self) -> Addr {
        self.shared_base
    }

    /// Address of lock slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= LOCK_COUNT`.
    pub fn lock_addr(&self, i: u64) -> Addr {
        assert!(i < LOCK_COUNT, "lock index out of range");
        self.locks_base + i * LOCK_STRIDE
    }

    /// Base of the barrier words (count at +0, sense at +1).
    pub fn barrier_base(&self) -> Addr {
        self.barrier_base
    }

    /// Base of thread `tid`'s interrupt mailbox.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn mailbox_base(&self, tid: u32) -> Addr {
        assert!(tid < self.threads, "thread id out of range");
        self.mailbox_base + u64::from(tid) * MAILBOX_WORDS
    }

    /// Base of the DMA target buffer.
    pub fn dma_base(&self) -> Addr {
        self.dma_base
    }

    /// Total words of backing store required.
    pub fn total_words(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let m = AddressMap::new(8);
        assert_eq!(m.private_base(0), 0);
        assert_eq!(m.private_base(7), 7 * PRIVATE_WORDS);
        assert_eq!(m.shared_base(), 8 * PRIVATE_WORDS);
        assert!(m.lock_addr(0) >= m.shared_base() + SHARED_WORDS);
        assert!(m.barrier_base() > m.lock_addr(LOCK_COUNT - 1));
        assert!(m.mailbox_base(0) >= m.barrier_base() + BARRIER_WORDS);
        assert!(m.dma_base() > m.mailbox_base(7));
        assert_eq!(m.total_words(), m.dma_base() + DMA_WORDS);
    }

    #[test]
    fn locks_are_line_separated() {
        let m = AddressMap::new(2);
        // 4-word stride = one 32-byte line apart.
        assert_eq!(m.lock_addr(1) - m.lock_addr(0), 4);
    }

    #[test]
    #[should_panic(expected = "thread id out of range")]
    fn private_base_checks_tid() {
        AddressMap::new(2).private_base(2);
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_panics() {
        AddressMap::new(0);
    }
}
