//! Minimal flag parsing: `--flag value` pairs and positionals.

/// Parsed command-line arguments (after the subcommand).
#[derive(Debug, Default)]
pub struct Args {
    /// Non-flag arguments, in order.
    pub positional: Vec<String>,
    flags: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Args {
    /// Splits `argv` into positionals and `--flag value` pairs; flags
    /// listed in `switches` are boolean — they consume no value and
    /// are queried with [`Args::has`].
    pub fn parse_with_switches(argv: &[String], switches: &[&str]) -> Result<Self, String> {
        let mut args = Args::default();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if a.starts_with('-') && a.len() > 1 {
                if switches.contains(&a.as_str()) {
                    args.switches.push(a.clone());
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag {a} needs a value"))?
                    .clone();
                args.flags.push((a.clone(), value));
            } else {
                args.positional.push(a.clone());
            }
        }
        Ok(args)
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, flag: &str) -> bool {
        self.switches.iter().any(|f| f == flag)
    }

    /// Last value of `flag`, if present.
    pub fn get(&self, flag: &str) -> Option<String> {
        self.flags
            .iter()
            .rev()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.clone())
    }

    /// All values of a repeatable flag.
    pub fn get_all(&self, flag: &str) -> Vec<String> {
        self.flags
            .iter()
            .filter(|(f, _)| f == flag)
            .map(|(_, v)| v.clone())
            .collect()
    }

    /// Numeric flag value.
    pub fn num(&self, flag: &str) -> Result<Option<u64>, String> {
        match self.get(flag) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("flag {flag} expects a number, got {v}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse_with_switches(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>(), &[])
            .unwrap()
    }

    #[test]
    fn positionals_and_flags_mix() {
        let a = parse(&["file.dlrn", "--seed", "9", "--watch", "1", "--watch", "2"]);
        assert_eq!(a.positional, vec!["file.dlrn"]);
        assert_eq!(a.num("--seed").unwrap(), Some(9));
        assert_eq!(a.get_all("--watch"), vec!["1", "2"]);
        assert_eq!(a.get("--missing"), None);
    }

    #[test]
    fn switches_take_no_value() {
        let argv: Vec<String> = ["run.dlrn", "--json", "--skip", "static"]
            .iter()
            .map(|x| x.to_string())
            .collect();
        let a = Args::parse_with_switches(&argv, &["--json"]).unwrap();
        assert!(a.has("--json"));
        assert!(!a.has("--quiet"));
        assert_eq!(a.positional, vec!["run.dlrn"]);
        assert_eq!(a.get("--skip"), Some("static".to_string()));
    }

    #[test]
    fn dangling_flag_is_an_error() {
        let argv = vec!["--seed".to_string()];
        assert!(Args::parse_with_switches(&argv, &[]).is_err());
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = parse(&["--seed", "zebra"]);
        assert!(a.num("--seed").is_err());
    }
}
