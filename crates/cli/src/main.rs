//! `delorean` — record, replay and inspect executions from the command
//! line, persisting recordings in the binary `.dlrn` format.
//!
//! ```text
//! delorean list
//! delorean record barnes -o run.dlrn --mode orderonly --procs 8 --budget 50000
//! delorean info run.dlrn
//! delorean replay run.dlrn --seed 99
//! delorean replay run.dlrn --stratified 1
//! delorean replay run.dlrn --jobs 8 --cert run.cert
//! delorean inspect run.dlrn --watch 0x30001 --limit 40
//! ```

use delorean::inspect::ReplayInspector;
use delorean::stream::StreamMeta;
use delorean::{serialize, FileSink, FileSource, LogSource, Machine, Mode, Recording};
use delorean_bench as bench;
use delorean_chunk::Committer;
use delorean_isa::workload;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

mod args;

use args::Args;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  delorean list
  delorean record <workload> -o <file> [--mode ordersize|orderonly|picolog]
                  [--procs N] [--budget N] [--chunk N] [--seed N] [--timing-seed N]
                  [--arbiter global|sharded:K] [--trace PATH]
  delorean info <file>
  delorean replay <file> [--seed N] [--stratified MAX]
  delorean replay <file> --jobs N [--cert PATH]
  delorean replay <file> --from N [--to M] [--index PATH] [--jobs N]
  delorean checkpoint <file> [--every K] [-o PATH]
  delorean checkpoint <file> --check PATH
  delorean inspect <file> [--watch ADDR]... [--limit N] [--json]
  delorean inspect <file> --at N [--index PATH] [--json]
  delorean analyze <file> [--json] [--skip static|races|lint]... [--max-examples N]
                  [--deps] [--cert PATH]
  delorean analyze <file> --check-cert PATH
  delorean analyze <file> --check-index PATH
  delorean analyze --trace PATH [--json]
  delorean bench [--figure figNN]... [--json PATH] [--jobs N] [--full]
                 [--baseline PATH] [--tolerance PCT] [--seed N]
                 [--budget-div N] [--verbose]
  delorean crashtest [--seed N] [--workload NAME]... [--procs N]
                     [--budget N] [--chunk N]";

fn run(argv: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = argv.first() else {
        return Err("missing command".to_string());
    };
    // Boolean switches are per-command: `analyze --json` is a toggle,
    // `bench --json PATH` takes the output path as a value.
    let switches: &[&str] = match cmd.as_str() {
        "bench" => &["--full", "--verbose"],
        "analyze" => &["--json", "--deps"],
        _ => &["--json"],
    };
    let args = Args::parse_with_switches(&argv[1..], switches)?;
    match cmd.as_str() {
        "list" => cmd_list().map(|()| ExitCode::SUCCESS),
        "record" => cmd_record(&args).map(|()| ExitCode::SUCCESS),
        "info" => cmd_info(&args).map(|()| ExitCode::SUCCESS),
        "replay" => cmd_replay(&args).map(|()| ExitCode::SUCCESS),
        "checkpoint" => cmd_checkpoint(&args),
        "inspect" => cmd_inspect(&args).map(|()| ExitCode::SUCCESS),
        "analyze" => cmd_analyze(&args),
        "bench" => cmd_bench(&args),
        "crashtest" => cmd_crashtest(&args),
        other => Err(format!("unknown command {other}")),
    }
}

fn cmd_list() -> Result<(), String> {
    println!(
        "{:<11} {:>6} {:>6} {:>6} {:>7}  kind",
        "workload", "mem%", "shared%", "write%", "locks"
    );
    for w in workload::catalog() {
        println!(
            "{:<11} {:>6.0} {:>7.0} {:>6.0} {:>7}  {:?}",
            w.name,
            w.mem_frac * 100.0,
            w.shared_frac * 100.0,
            w.write_frac * 100.0,
            if w.lock_every == 0 {
                "-".to_string()
            } else {
                w.lock_count.to_string()
            },
            w.kind
        );
    }
    Ok(())
}

fn parse_mode(s: &str) -> Result<Mode, String> {
    match s.to_ascii_lowercase().as_str() {
        "ordersize" | "order&size" | "os" => Ok(Mode::OrderSize),
        "orderonly" | "oo" => Ok(Mode::OrderOnly),
        "picolog" | "pl" => Ok(Mode::PicoLog),
        other => Err(format!(
            "unknown mode {other} (ordersize|orderonly|picolog)"
        )),
    }
}

fn machine_for(recording: &Recording) -> Machine {
    Machine::builder()
        .mode(recording.mode)
        .procs(recording.n_procs)
        .chunk_size(recording.chunk_size)
        .budget(recording.budget)
        .devices(recording.devices)
        .build()
}

fn machine_from_meta(meta: &StreamMeta) -> Machine {
    machine_from_meta_with_jobs(meta, 1)
}

fn machine_from_meta_with_jobs(meta: &StreamMeta, jobs: u32) -> Machine {
    Machine::builder()
        .mode(meta.mode)
        .procs(meta.n_procs)
        .chunk_size(meta.chunk_size)
        .budget(meta.budget)
        .devices(meta.devices)
        .replay_jobs(jobs)
        .build()
}

fn recording_path(args: &Args) -> Result<&String, String> {
    args.positional
        .first()
        .ok_or_else(|| "missing recording file".to_string())
}

/// Opens a `.dlrn` file as a streaming log source; only the header is
/// read eagerly, segments are decoded on demand.
fn open_source(path: &str) -> Result<FileSource<BufReader<File>>, String> {
    let file = File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
    FileSource::open(BufReader::new(file)).map_err(|e| format!("decoding {path}: {e}"))
}

fn load(args: &Args) -> Result<Recording, String> {
    let path = recording_path(args)?;
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    serialize::from_bytes(&bytes).map_err(|e| format!("decoding {path}: {e}"))
}

fn cmd_record(args: &Args) -> Result<(), String> {
    let name = args.positional.first().ok_or("missing workload name")?;
    let w = workload::by_name(name)
        .ok_or_else(|| format!("unknown workload {name} (try `delorean list`)"))?;
    let out = args
        .get("-o")
        .or_else(|| args.get("--out"))
        .ok_or("missing -o <file>")?;
    let mode = args
        .get("--mode")
        .map(|s| parse_mode(&s))
        .transpose()?
        .unwrap_or(Mode::OrderOnly);
    let mut b = Machine::builder();
    b.mode(mode);
    let procs = args.num("--procs")?.unwrap_or(8) as u32;
    delorean::validate_procs(procs).map_err(|e| format!("bad --procs: {e}"))?;
    b.procs(procs);
    b.budget(args.num("--budget")?.unwrap_or(50_000));
    if let Some(c) = args.num("--chunk")? {
        b.chunk_size(c as u32);
    }
    if let Some(t) = args.num("--timing-seed")? {
        b.timing_seed(t);
    }
    if let Some(a) = args.get("--arbiter") {
        let arbiter = delorean::ArbiterConfig::parse(&a)
            .ok_or_else(|| format!("bad --arbiter {a} (use global or sharded:K, K in 1..=256)"))?;
        b.arbiter(arbiter);
    }
    let machine = b.build();
    let seed = args.num("--seed")?.unwrap_or(2026);
    let file = File::create(&out).map_err(|e| format!("creating {out}: {e}"))?;
    let mut sink = FileSink::new(BufWriter::new(file));
    // `--trace` stacks a JSONL tracer stage on the session; without it
    // the stage list is empty and the pipeline runs the bare fast path.
    let stats = match args.get("--trace") {
        None => machine.record_to(w, seed, &mut sink),
        Some(tpath) => {
            let tfile = File::create(&tpath).map_err(|e| format!("creating {tpath}: {e}"))?;
            let mut tracer = delorean_trace::JsonlTracer::new(BufWriter::new(tfile));
            let stats = machine
                .session()
                .with_stage(&mut tracer)
                .record_to(w, seed, &mut sink);
            let lines = tracer.lines();
            let (_, err) = tracer.finish();
            if let Some(e) = err {
                return Err(format!("writing {tpath}: {e}"));
            }
            println!("traced {lines} events -> {tpath}");
            stats
        }
    };
    let peak = sink.peak_buffered_bytes();
    let written = sink.bytes_written();
    let writer = sink
        .into_inner()
        .map_err(|e| format!("writing {out}: {e}"))?;
    writer
        .into_inner()
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "recorded {name} ({mode}, {} procs, {} insts/proc) -> {out} ({written} bytes, streamed)",
        machine.procs(),
        machine.budget(),
    );
    let kiloinsts = machine.procs() as f64 * machine.budget() as f64 / 1000.0;
    println!(
        "log stream: {:.3} bits/proc/kilo-instruction on disk, {} commits, {} squashes, peak buffer {peak} bytes",
        written as f64 * 8.0 / kiloinsts,
        stats.total_commits,
        stats.squashes
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let r = load(args)?;
    println!("mode        : {}", r.mode);
    println!("workload    : {} (seed {})", r.workload.name, r.app_seed);
    println!("processors  : {}", r.n_procs);
    println!("chunk size  : {}", r.chunk_size);
    println!("budget      : {} instructions/processor", r.budget);
    println!("arbiter     : {}", r.arbiter);
    println!("checkpoint  : {:#018x}", r.checkpoint.id());
    let s = r.memory_ordering_sizes();
    println!(
        "PI log      : {} entries, {} bits raw / {} compressed",
        r.logs.pi.len(),
        s.pi.raw_bits,
        s.pi.compressed_bits
    );
    println!(
        "CS logs     : {} entries, {} bits raw",
        r.logs.cs.iter().map(|l| l.len()).sum::<usize>(),
        s.cs.raw_bits
    );
    println!(
        "input logs  : {} interrupts, {} I/O values, {} DMA transfers",
        r.stats.interrupts,
        r.logs.io.iter().map(|l| l.len()).sum::<usize>(),
        r.logs.dma.len()
    );
    println!(
        "rate        : {:.3} compressed bits/proc/kilo-instruction ({:.2} GB/day @ 8x5GHz IPC1)",
        r.compressed_bits_per_proc_per_kiloinst(),
        r.gigabytes_per_day(5.0, 1.0)
    );
    println!("digest      : memory {:#018x}", r.digest().mem_hash);
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    if args.get("--from").is_some() || args.get("--to").is_some() {
        return cmd_replay_window(args);
    }
    if let Some(jobs) = args.num("--jobs")? {
        return cmd_replay_parallel(args, jobs as u32);
    }
    let seed = args.num("--seed")?.unwrap_or(0x5a5a);
    let report = if let Some(max) = args.num("--stratified")? {
        // Stratification needs the chunk footprints resident, so this
        // path still decodes the whole recording up front.
        let r = load(args)?;
        if !r.mode.has_pi_log() {
            return Err(format!("{} recordings have no PI log to stratify", r.mode));
        }
        machine_for(&r)
            .replay_stratified(&r, max as u32, seed)
            .map_err(|e| e.to_string())?
    } else {
        let path = recording_path(args)?;
        let source = open_source(path)?;
        let meta = source
            .meta()
            .ok_or("stream carries no recording metadata")?;
        let machine = machine_from_meta(meta);
        machine
            .replay_from_with_seed(source, seed)
            .map_err(|e| e.to_string())?
    };
    println!(
        "replayed {} commits in {} cycles",
        report.stats.total_commits, report.stats.cycles
    );
    if report.deterministic {
        println!("deterministic: yes — execution reproduced bit-exactly");
        Ok(())
    } else {
        Err(format!(
            "replay diverged: {}",
            report.divergence.unwrap_or_default()
        ))
    }
}

/// `replay --jobs N [--cert PATH]`: the chunk-parallel executor.
/// Retirement stays in recorded slot order, so the digest fingerprint
/// printed here is byte-identical at every job count — CI smoke tests
/// compare that line across `--jobs` values.
fn cmd_replay_parallel(args: &Args, jobs: u32) -> Result<(), String> {
    if jobs == 0 {
        return Err("--jobs must be at least 1".to_string());
    }
    if args.num("--stratified")?.is_some() {
        return Err("--stratified and --jobs are mutually exclusive".to_string());
    }
    let path = recording_path(args)?;
    let mut opts = delorean::ParallelReplayOptions::with_jobs(jobs);
    if let Some(cpath) = args.get("--cert") {
        let cert = std::fs::read_to_string(&cpath).map_err(|e| format!("reading {cpath}: {e}"))?;
        // Bind the certificate to this stream: a cert generated from a
        // different recording fails the fingerprint check here rather
        // than silently mis-hinting the executor.
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        let hints = delorean_analyze::certificate_hints(&cert, Some(&bytes))
            .map_err(|e| format!("certificate {cpath}: {e}"))?;
        println!(
            "certificate {cpath}: dependence hints for {} slots",
            hints.len()
        );
        opts.hints = Some(hints);
    }
    let source = open_source(path)?;
    let meta = source
        .meta()
        .ok_or("stream carries no recording metadata")?;
    let machine = machine_from_meta(meta);
    let (report, spec) = machine
        .replay_parallel_with(source, &opts)
        .map_err(|e| e.to_string())?;
    println!(
        "replayed {} commits in {} cycles ({jobs} jobs)",
        report.stats.total_commits, report.stats.cycles
    );
    println!(
        "speculation: {} rounds, {} chunks speculated, {} retired speculatively, {} in order, {} conflicts, {} hint skips",
        spec.rounds,
        spec.speculated_chunks,
        spec.speculative_retires,
        spec.serial_retires,
        spec.conflicts,
        spec.hint_skips
    );
    println!(
        "digest fingerprint {:#018x}",
        report.stats.digest.fingerprint()
    );
    if report.deterministic {
        println!("deterministic: yes — execution reproduced bit-exactly");
        Ok(())
    } else {
        Err(format!(
            "replay diverged: {}",
            report.divergence.unwrap_or_default()
        ))
    }
}

/// Resolves and decodes the `.dlrnx` sidecar for a recording: an
/// explicit `--index PATH`, or the `<file>x` convention next to the
/// log. Decode failures are typed errors — never a fallback to slot 0.
fn load_index_for(args: &Args, path: &str) -> Result<delorean::CheckpointIndex, String> {
    let xpath = args.get("--index").unwrap_or_else(|| format!("{path}x"));
    let encoded = std::fs::read(&xpath).map_err(|e| {
        format!("reading {xpath}: {e} (build an index with `delorean checkpoint {path}`)")
    })?;
    delorean::CheckpointIndex::from_bytes(&encoded)
        .map_err(|e| format!("checkpoint index {xpath}: {e}"))
}

/// Opens a checkpoint cursor over a recording: the `.dlrnx` sidecar
/// plus the log file, fingerprint-verified against each other.
fn open_cursor(args: &Args, path: &str) -> Result<delorean::ReplayCursor<BufReader<File>>, String> {
    let index = load_index_for(args, path)?;
    let file = File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
    delorean::ReplayCursor::open(BufReader::new(file), index)
        .map_err(|e| format!("opening checkpoint cursor on {path}: {e}"))
}

/// `delorean checkpoint <file>` — builds a `.dlrnx` checkpoint-index
/// sidecar (one indexing replay, snapshots every `--every` commits),
/// or with `--check PATH` validates an existing sidecar against the
/// log's fingerprint.
fn cmd_checkpoint(args: &Args) -> Result<ExitCode, String> {
    let path = recording_path(args)?.clone();
    let bytes = std::fs::read(&path).map_err(|e| format!("reading {path}: {e}"))?;
    if let Some(xpath) = args.get("--check") {
        let encoded = std::fs::read(&xpath).map_err(|e| format!("reading {xpath}: {e}"))?;
        return match delorean_analyze::validate_checkpoint_index(&encoded, &bytes) {
            Ok(s) => {
                println!(
                    "checkpoint index OK: {} checkpoint(s) every {} commit(s) over {} commits, \
                     bound to {path} ({} bytes, fingerprint {:#018x})",
                    s.entries, s.interval_k, s.total_commits, s.source_bytes, s.fingerprint
                );
                Ok(ExitCode::SUCCESS)
            }
            Err(e) => {
                println!("checkpoint index INVALID: {e}");
                Ok(ExitCode::FAILURE)
            }
        };
    }
    let every = args.num("--every")?.unwrap_or(64);
    let index = delorean::index_stream(&bytes, every).map_err(|e| e.to_string())?;
    let out = args
        .get("-o")
        .or_else(|| args.get("--out"))
        .unwrap_or_else(|| format!("{path}x"));
    let encoded = index.to_bytes();
    std::fs::write(&out, &encoded).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "indexed {} commits -> {out}: {} checkpoint(s) every {every} commit(s) ({} bytes)",
        index.total_commits,
        index.entries.len(),
        encoded.len()
    );
    Ok(ExitCode::SUCCESS)
}

/// `replay --from N [--to M]`: seeks to the nearest checkpoint at or
/// before N via the `.dlrnx` sidecar, rolls forward, and replays only
/// the window — through the serial engine, or the chunk-parallel
/// executor when `--jobs` is given.
fn cmd_replay_window(args: &Args) -> Result<(), String> {
    let path = recording_path(args)?.clone();
    let from = args.num("--from")?.unwrap_or(0);
    let to = args.num("--to")?;
    let jobs = args.num("--jobs")?.unwrap_or(1) as u32;
    if jobs == 0 {
        return Err("--jobs must be at least 1".to_string());
    }
    if args.num("--stratified")?.is_some() {
        return Err("--stratified and --from/--to are mutually exclusive".to_string());
    }
    let meta = open_source(&path)?
        .meta()
        .ok_or("stream carries no recording metadata")?
        .clone();
    let machine = machine_from_meta_with_jobs(&meta, jobs);
    let mut cursor = open_cursor(args, &path)?;
    let report = machine
        .replay_window(&mut cursor, from, to)
        .map_err(|e| e.to_string())?;
    let span = match to {
        Some(t) => format!("{from}..{t}"),
        None => format!("{from}..end"),
    };
    println!(
        "replayed window {span}: {} commit(s){}",
        report.stats.total_commits,
        if jobs > 1 {
            format!(" ({jobs} jobs)")
        } else {
            String::new()
        }
    );
    println!(
        "digest fingerprint {:#018x}",
        report.stats.digest.fingerprint()
    );
    if report.deterministic {
        println!("deterministic: yes — window reproduced bit-exactly");
        Ok(())
    } else {
        Err(format!(
            "replay diverged: {}",
            report.divergence.unwrap_or_default()
        ))
    }
}

/// `inspect --at N`: restores the architectural state at commit N via
/// the checkpoint index (seek + bounded roll-forward, not a full
/// replay) and prints its summary.
fn cmd_inspect_at(args: &Args, path: &str, at: u64, json: bool) -> Result<(), String> {
    let meta = open_source(path)?
        .meta()
        .ok_or("stream carries no recording metadata")?
        .clone();
    let machine = machine_from_meta(&meta);
    let mut cursor = open_cursor(args, path)?;
    let ck = machine
        .state_at(&mut cursor, at)
        .map_err(|e| e.to_string())?;
    if json {
        let chunks: Vec<String> = ck.state.chunks_done.iter().map(u64::to_string).collect();
        println!(
            "{{\"event\":\"state_at\",\"gcc\":{},\"checkpoint_id\":\"{:#018x}\",\"chunks_done\":[{}],\"max_retired\":{}}}",
            ck.gcc,
            ck.id(),
            chunks.join(","),
            ck.max_retired()
        );
    } else {
        println!("state at commit {}:", ck.gcc);
        println!(
            "  workload     : {} (seed {})",
            ck.workload.name, ck.app_seed
        );
        println!("  processors   : {}", ck.n_procs);
        println!("  checkpoint id: {:#018x}", ck.id());
        println!("  max retired  : {} instructions", ck.max_retired());
        for (p, c) in ck.state.chunks_done.iter().enumerate() {
            println!("  P{p:<2} committed : {c} chunk(s)");
        }
    }
    Ok(())
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    let path = recording_path(args)?.clone();
    if let Some(at) = args.num("--at")? {
        return cmd_inspect_at(args, &path, at, args.has("--json"));
    }
    let source = open_source(&path)?;
    let mode = source
        .meta()
        .ok_or("stream carries no recording metadata")?
        .mode;
    let mode_tag = delorean_trace::mode_tag(mode);
    let json = args.has("--json");
    let mut inspector = ReplayInspector::from_source(source).map_err(|e| e.to_string())?;
    for w in args.get_all("--watch") {
        let addr = parse_addr(&w)?;
        inspector.watch(addr);
    }
    let limit = args.num("--limit")?.unwrap_or(u64::MAX);
    let watching = !args.get_all("--watch").is_empty();
    let mut printed = 0u64;
    while let Some(ev) = inspector.step().map_err(|e| e.to_string())? {
        let interesting = !watching || !ev.watch_hits.is_empty();
        if !interesting || printed >= limit {
            continue;
        }
        if json {
            // Commit spans share the session-trace schema: the line is
            // built from the same SubstrateEvent the pipeline emits.
            // The inspector has no cycle clock, so `t` is the global
            // commit slot.
            println!(
                "{}",
                delorean_trace::event_line(ev.gcc, mode_tag, &ev.to_substrate())
            );
            for h in &ev.watch_hits {
                println!(
                    "{{\"event\":\"watch\",\"t\":{},\"addr\":\"{:#x}\",\"old\":\"{:#x}\",\"new\":\"{:#x}\"}}",
                    ev.gcc, h.addr, h.old, h.new
                );
            }
        } else {
            let who = match ev.committer {
                Committer::Proc(p) => format!("P{p}"),
                Committer::Dma => "DMA".to_string(),
            };
            print!(
                "GCC {:>5}  {who:<4} chunk {:>4} size {:>5}",
                ev.gcc, ev.chunk_index, ev.size
            );
            if ev.interrupt {
                print!("  [interrupt]");
            }
            for h in &ev.watch_hits {
                print!("  {:#x}: {:#x} -> {:#x}", h.addr, h.old, h.new);
            }
            println!();
        }
        printed += 1;
    }
    let report = {
        // A second streaming pass verifies the digest against the trailer.
        let mut check =
            ReplayInspector::from_source(open_source(&path)?).map_err(|e| e.to_string())?;
        check.run_to_end().map_err(|e| e.to_string())?
    };
    if json {
        println!(
            "{{\"event\":\"inspect_end\",\"commits\":{},\"matches_recording\":{}}}",
            report.commits, report.matches_recording
        );
    } else {
        println!(
            "software replay of {} commits matches recording: {}",
            report.commits, report.matches_recording
        );
    }
    Ok(())
}

/// `delorean analyze --trace PATH` — validates a JSONL session trace
/// against the `delorean-trace` schema and summarizes it. Exits
/// non-zero on the first schema violation.
fn cmd_analyze_trace(path: &str, json: bool) -> Result<ExitCode, String> {
    let file = File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
    match delorean_trace::validate(BufReader::new(file)) {
        Ok(s) => {
            if json {
                println!(
                    "{{\"trace\":\"valid\",\"lines\":{},\"mode\":\"{}\",\"workload\":\"{}\",\"procs\":{},\"commits\":{},\"chunk_starts\":{},\"squashes\":{},\"interrupts\":{},\"segment_flushes\":{},\"cycles\":{}}}",
                    s.lines,
                    s.mode,
                    s.workload,
                    s.procs,
                    s.commits,
                    s.chunk_starts,
                    s.squashes,
                    s.interrupts,
                    s.segment_flushes,
                    s.cycles
                );
            } else {
                println!(
                    "trace OK: {} lines — {} on {} ({} procs), {} commits / {} chunk starts / {} squashes / {} flushes in {} cycles",
                    s.lines,
                    s.workload,
                    s.mode,
                    s.procs,
                    s.commits,
                    s.chunk_starts,
                    s.squashes,
                    s.segment_flushes,
                    s.cycles
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            println!("trace INVALID: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn cmd_analyze(args: &Args) -> Result<ExitCode, String> {
    if let Some(tpath) = args.get("--trace") {
        return cmd_analyze_trace(&tpath, args.has("--json"));
    }
    let path = recording_path(args)?.clone();
    let skip = args.get_all("--skip");
    let skip = |pass: &str| skip.iter().any(|s| s == pass);
    let max_examples = args.num("--max-examples")?.map(|n| n as usize);
    let deps_requested = args.has("--deps") || args.get("--cert").is_some();

    // `--check-index` is a standalone verb: validate an existing
    // `.dlrnx` checkpoint index against this stream and exit.
    if let Some(xpath) = args.get("--check-index") {
        let encoded = std::fs::read(&xpath).map_err(|e| format!("reading {xpath}: {e}"))?;
        let bytes = std::fs::read(&path).map_err(|e| format!("reading {path}: {e}"))?;
        return match delorean_analyze::validate_checkpoint_index(&encoded, &bytes) {
            Ok(s) => {
                println!(
                    "checkpoint index OK: {} checkpoint(s) every {} commit(s) over {} commits, \
                     bound to {path} ({} bytes, fingerprint {:#018x})",
                    s.entries, s.interval_k, s.total_commits, s.source_bytes, s.fingerprint
                );
                Ok(ExitCode::SUCCESS)
            }
            Err(e) => {
                println!("checkpoint index INVALID: {e}");
                Ok(ExitCode::FAILURE)
            }
        };
    }

    // `--check-cert` is a standalone verb: validate an existing
    // certificate against this stream and exit.
    if let Some(cert_path) = args.get("--check-cert") {
        let text =
            std::fs::read_to_string(&cert_path).map_err(|e| format!("reading {cert_path}: {e}"))?;
        let bytes = std::fs::read(&path).map_err(|e| format!("reading {path}: {e}"))?;
        return match delorean_analyze::validate_certificate(&text, Some(&bytes)) {
            Ok(s) => {
                println!(
                    "certificate OK: schema v{}, {} node(s), {} edge(s), bound to {} ({} bytes, fingerprint {:#018x}){}",
                    s.schema_version,
                    s.node_count,
                    s.edge_count,
                    path,
                    s.source_bytes,
                    s.fingerprint,
                    if s.partial { ", PARTIAL" } else { "" }
                );
                Ok(ExitCode::SUCCESS)
            }
            Err(e) => {
                println!("certificate INVALID: {e}");
                Ok(ExitCode::FAILURE)
            }
        };
    }

    // Pass 3 first: the lint works on the raw byte stream and cannot
    // itself fail, so a corrupt file still yields a report. Linting
    // the full byte image lets a damaged stream also carry the salvage
    // account of what a recovery would preserve. The deps pass shares
    // the byte image (it fingerprints the certificate against it).
    let bytes = if !skip("lint") || deps_requested {
        Some(std::fs::read(&path).map_err(|e| format!("reading {path}: {e}"))?)
    } else {
        None
    };
    let lint = match &bytes {
        Some(b) if !skip("lint") => Some(delorean_analyze::lint_bytes(b)),
        _ => None,
    };
    // Pass 4: the dependence DAG / parallelism certificate. Works from
    // the byte image so damaged streams degrade to a partial
    // certificate over the salvaged prefix instead of erroring.
    let deps = match &bytes {
        Some(b) if deps_requested => Some(delorean_analyze::deps_from_bytes(
            b,
            &delorean_analyze::DepsOptions::default(),
        )),
        _ => None,
    };

    // The replay-based passes need decodable metadata; without it they
    // are skipped (the lint above already carries the decode error).
    let report = match open_source(&path) {
        Err(_) => delorean_analyze::AnalysisReport {
            workload: "unknown".to_string(),
            mode: "unknown".to_string(),
            n_procs: 0,
            static_pass: None,
            races: None,
            lint,
            deps,
        },
        Ok(source) => {
            let meta = source
                .meta()
                .ok_or("stream carries no recording metadata")?
                .clone();
            let static_pass = if skip("static") {
                None
            } else {
                let mut opts = delorean_analyze::StaticOptions::default();
                if let Some(n) = max_examples {
                    opts.max_examples = n;
                }
                Some(delorean_analyze::analyze_workload(
                    &meta.workload,
                    meta.n_procs,
                    meta.app_seed,
                    &opts,
                ))
            };
            let races = if skip("races") {
                None
            } else {
                let mut opts = delorean_analyze::RaceOptions::default();
                if let Some(n) = max_examples {
                    opts.max_examples = n;
                }
                Some(match delorean_analyze::detect_races(source, &opts) {
                    Ok(r) => r,
                    Err(e) => delorean_analyze::RaceReport::failed(&e),
                })
            };
            delorean_analyze::AnalysisReport {
                workload: meta.workload.name.to_string(),
                mode: meta.mode.to_string(),
                n_procs: meta.n_procs,
                static_pass,
                races,
                lint,
                deps,
            }
        }
    };
    if let Some(cert_path) = args.get("--cert") {
        let Some(d) = &report.deps else {
            return Err("--cert requires the dependence pass (pass --deps)".to_string());
        };
        match d.certificate() {
            Some(text) => {
                std::fs::write(&cert_path, text)
                    .map_err(|e| format!("writing {cert_path}: {e}"))?;
                if !args.has("--json") {
                    println!("wrote replay-parallelism certificate -> {cert_path}");
                }
            }
            None => {
                return Err(
                    "no certificate: the dependence replay did not complete (see diagnostics)"
                        .to_string(),
                )
            }
        }
    }
    if args.has("--json") {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    if report.error_count() > 0 {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// `delorean crashtest` — sweeps the fault-injection scenario matrix
/// (workloads × modes × fault classes) and verifies the recovery
/// invariants: every injected-fault run either replays bit-identically
/// to ground truth on its recovered commit ranges or produces a
/// salvage report naming the lost range. The matrix runs twice to
/// prove the fault schedules and reports are seed-deterministic.
/// Exits non-zero iff any invariant is violated.
fn cmd_crashtest(args: &Args) -> Result<ExitCode, String> {
    let mut cfg = delorean_faults::CrashtestConfig::smoke(args.num("--seed")?.unwrap_or(42));
    if let Some(n) = args.num("--procs")? {
        delorean::validate_procs(n as u32).map_err(|e| format!("bad --procs: {e}"))?;
        cfg.procs = n as u32;
    }
    if let Some(n) = args.num("--budget")? {
        cfg.budget = n;
    }
    if let Some(n) = args.num("--chunk")? {
        cfg.chunk_size = n as u32;
    }
    let workloads = args.get_all("--workload");
    if !workloads.is_empty() {
        for w in &workloads {
            if workload::by_name(w).is_none() {
                return Err(format!("unknown workload {w} (see `delorean list`)"));
            }
        }
        cfg.workloads = workloads;
    }
    let report = delorean_faults::run_crashtest(&cfg)?;
    print!("{}", report.render());
    let again = delorean_faults::run_crashtest(&cfg)?;
    if report.render() != again.render() {
        println!("crashtest: FAIL (matrix is not deterministic across reruns)");
        return Ok(ExitCode::FAILURE);
    }
    if report.passed() {
        println!("crashtest: PASS (matrix deterministic across reruns)");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("crashtest: FAIL");
        Ok(ExitCode::FAILURE)
    }
}

/// `delorean bench` — the parallel experiment engine: regenerates the
/// paper's figure/table points as a job sweep, optionally writing the
/// structured `BENCH_results.json` document and gating against a
/// committed baseline.
///
/// No partial output: any sweep error (zero budget, unknown workload
/// or figure, a panicking job) surfaces *before* the JSON file is
/// created.
fn cmd_bench(args: &Args) -> Result<ExitCode, String> {
    let mut figures = Vec::new();
    for name in args.get_all("--figure") {
        figures.push(
            bench::Figure::parse(&name).ok_or_else(|| {
                bench::BenchError::UnknownFigure { name: name.clone() }.to_string()
            })?,
        );
    }
    let cfg = bench::SweepConfig {
        figures,
        jobs: args.num("--jobs")?.unwrap_or(0) as usize,
        full: args.has("--full"),
        base_seed: args.num("--seed")?.unwrap_or(42),
        budget_div: args.num("--budget-div")?.unwrap_or(1),
        verbose: args.has("--verbose"),
    };
    let results = bench::run_sweep(&cfg).map_err(|e| e.to_string())?;

    if let Some(path) = args.get("--json") {
        let text = results.to_json().pretty();
        std::fs::write(&path, text).map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "wrote {} records to {path} ({} workers, {:.0} ms)",
            results.records.len(),
            results.workers,
            results.total_wall_ms
        );
    }
    print_bench_summary(&results);
    if args.has("--verbose") {
        print_stage_totals(&results);
    }

    let Some(baseline_path) = args.get("--baseline") else {
        return Ok(ExitCode::SUCCESS);
    };
    let text = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("reading {baseline_path}: {e}"))?;
    let baseline = bench::parse_document(&text).map_err(|e| e.to_string())?;
    let tolerance = args.num("--tolerance")?.unwrap_or(25) as f64;
    let report = bench::diff_against(&results, &baseline, tolerance);
    print!("{}", report.render());
    if report.passed() {
        println!("baseline gate: PASS");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("baseline gate: FAIL");
        Ok(ExitCode::FAILURE)
    }
}

fn print_bench_summary(results: &bench::SweepResults) {
    for s in &results.summaries {
        println!();
        println!("== {} ==", s.figure);
        for m in &s.metrics {
            match m.paper {
                Some(p) => println!(
                    "  {:<32} measured {:>10.3}   paper {:>8.3}",
                    m.name, m.measured, p
                ),
                None => println!("  {:<32} measured {:>10.3}", m.name, m.measured),
            }
        }
    }
}

/// Per-stage wall-clock totals across the sweep (`--verbose`).
fn print_stage_totals(results: &bench::SweepResults) {
    let mut record = 0.0;
    let mut replay = 0.0;
    let mut compress = 0.0;
    let mut arb: u64 = 0;
    for r in &results.records {
        record += r.timings.record_ms;
        replay += r.timings.replay_ms;
        compress += r.timings.compress_ms;
        arb += r.timings.arb_cycles;
    }
    println!();
    println!("stage totals across {} jobs:", results.records.len());
    println!("  record    {record:>10.0} ms");
    println!("  replay    {replay:>10.0} ms");
    println!("  compress  {compress:>10.0} ms");
    println!("  commit arbitration {arb} simulated cycles");
    let peak = results.records.iter().map(|r| r.peak_rss_kb).max();
    if let Some(kb) = peak {
        println!("  peak RSS  {kb} KiB");
    }
}

fn parse_addr(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("bad address {s}"))
}
