//! Cross-processor dependence detection over the interleaved access
//! stream.

use delorean_sim::AccessRecord;
use std::collections::HashMap;

/// Kind of a shared-memory dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write.
    Raw,
    /// Write-after-read.
    War,
    /// Write-after-write.
    Waw,
}

/// One cross-processor dependence between dynamic instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dependence {
    /// Source (earlier) processor.
    pub src_proc: u32,
    /// Source retired-instruction count.
    pub src_icount: u64,
    /// Destination (later) processor.
    pub dst_proc: u32,
    /// Destination retired-instruction count.
    pub dst_icount: u64,
    /// Dependence kind.
    pub kind: DepKind,
}

#[derive(Debug, Default, Clone)]
struct LineState {
    last_writer: Option<(u32, u64)>,
    readers_since_write: Vec<(u32, u64)>,
}

/// Tracks per-line access history and emits every cross-processor
/// dependence, in global (SC interleaving) order.
///
/// # Examples
///
/// ```
/// use delorean_baselines::DependenceTracker;
/// use delorean_sim::AccessRecord;
/// let mut t = DependenceTracker::new();
/// t.observe(&AccessRecord { proc: 0, icount: 1, line: 9, write: true });
/// let deps = t.observe(&AccessRecord { proc: 1, icount: 1, line: 9, write: false });
/// assert_eq!(deps.len(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct DependenceTracker {
    lines: HashMap<u64, LineState>,
}

impl DependenceTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one access; returns the cross-processor dependences it
    /// closes (source strictly earlier in the interleaving).
    pub fn observe(&mut self, rec: &AccessRecord) -> Vec<Dependence> {
        let state = self.lines.entry(rec.line).or_default();
        let mut deps = Vec::new();
        if rec.write {
            if let Some((wp, wi)) = state.last_writer {
                if wp != rec.proc {
                    deps.push(Dependence {
                        src_proc: wp,
                        src_icount: wi,
                        dst_proc: rec.proc,
                        dst_icount: rec.icount,
                        kind: DepKind::Waw,
                    });
                }
            }
            for &(rp, ri) in &state.readers_since_write {
                if rp != rec.proc {
                    deps.push(Dependence {
                        src_proc: rp,
                        src_icount: ri,
                        dst_proc: rec.proc,
                        dst_icount: rec.icount,
                        kind: DepKind::War,
                    });
                }
            }
            state.last_writer = Some((rec.proc, rec.icount));
            state.readers_since_write.clear();
        } else {
            if let Some((wp, wi)) = state.last_writer {
                if wp != rec.proc {
                    deps.push(Dependence {
                        src_proc: wp,
                        src_icount: wi,
                        dst_proc: rec.proc,
                        dst_icount: rec.icount,
                        kind: DepKind::Raw,
                    });
                }
            }
            state.readers_since_write.push((rec.proc, rec.icount));
        }
        deps
    }

    /// Lines seen so far.
    pub fn lines_tracked(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(proc: u32, icount: u64, line: u64, write: bool) -> AccessRecord {
        AccessRecord {
            proc,
            icount,
            line,
            write,
        }
    }

    #[test]
    fn raw_war_waw_detection() {
        let mut t = DependenceTracker::new();
        assert!(t.observe(&acc(0, 1, 5, true)).is_empty());
        let raw = t.observe(&acc(1, 3, 5, false));
        assert_eq!(raw[0].kind, DepKind::Raw);
        assert_eq!((raw[0].src_proc, raw[0].src_icount), (0, 1));
        let deps = t.observe(&acc(2, 7, 5, true));
        // WAW from proc 0's write and WAR from proc 1's read.
        let kinds: Vec<DepKind> = deps.iter().map(|d| d.kind).collect();
        assert!(kinds.contains(&DepKind::Waw));
        assert!(kinds.contains(&DepKind::War));
    }

    #[test]
    fn same_processor_accesses_are_program_order() {
        let mut t = DependenceTracker::new();
        t.observe(&acc(0, 1, 5, true));
        assert!(t.observe(&acc(0, 2, 5, false)).is_empty());
        assert!(t.observe(&acc(0, 3, 5, true)).is_empty());
    }

    #[test]
    fn writes_clear_reader_sets() {
        let mut t = DependenceTracker::new();
        t.observe(&acc(0, 1, 5, false));
        t.observe(&acc(1, 1, 5, true)); // WAR from proc 0
        let deps = t.observe(&acc(2, 1, 5, true));
        // Only WAW from proc 1; proc 0's read was cleared.
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].kind, DepKind::Waw);
        assert_eq!(deps[0].src_proc, 1);
    }

    #[test]
    fn distinct_lines_do_not_interact() {
        let mut t = DependenceTracker::new();
        t.observe(&acc(0, 1, 5, true));
        assert!(t.observe(&acc(1, 1, 6, false)).is_empty());
        assert_eq!(t.lines_tracked(), 2);
    }
}
