//! Published reference values the DeLorean paper compares against.
//!
//! The paper does not re-run FDR/RTR/Strata; it compares its measured
//! log sizes against the numbers those papers published. The figure
//! harness prints both our measured baselines and these published
//! lines, clearly labelled.

/// Basic RTR's published compressed log size: about 1 byte per
/// processor per kilo-instruction (the "Average compressed log size in
/// Basic RTR (estimated)" line of Figures 6-8).
pub const RTR_BITS_PER_PROC_PER_KILOINST: f64 = 8.0;

/// FDR's published compressed log rate: 2 MB per 1 GHz processor per
/// second, i.e. ~16 bits per processor per kilo-instruction at IPC 1.
pub const FDR_BITS_PER_PROC_PER_KILOINST: f64 = 16.0;

/// Strata's published compressed log size: 2.2 KB per million memory
/// references for a 4-processor run.
pub const STRATA_KB_PER_MILLION_REFS: f64 = 2.2;

/// Extra log cost of recording WAR dependences in Strata (+25%).
pub const STRATA_WAR_OVERHEAD: f64 = 0.25;

/// DeLorean's headline OrderOnly numbers for cross-checking the
/// reproduction (compressed bits per processor per kilo-instruction at
/// 2000-instruction chunks).
pub const PAPER_ORDERONLY_BITS: f64 = 1.3;

/// DeLorean's headline PicoLog number (compressed bits per processor
/// per kilo-instruction at 1000-instruction chunks).
pub const PAPER_PICOLOG_BITS: f64 = 0.05;

/// The paper's PicoLog log-volume estimate for eight 5 GHz processors.
pub const PAPER_PICOLOG_GB_PER_DAY: f64 = 20.0;

#[cfg(test)]
mod tests {
    #[test]
    fn reference_relationships_hold() {
        // RTR improves on FDR; DeLorean improves on RTR. Read through
        // locals so the comparison is on values, not const expressions.
        let (fdr, rtr) = (
            super::FDR_BITS_PER_PROC_PER_KILOINST,
            super::RTR_BITS_PER_PROC_PER_KILOINST,
        );
        let (oo, pl) = (super::PAPER_ORDERONLY_BITS, super::PAPER_PICOLOG_BITS);
        assert!(rtr < fdr);
        assert!(oo < rtr);
        assert!(pl < oo);
    }
}
