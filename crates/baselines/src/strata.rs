//! The Strata baseline recorder.
//!
//! Instead of individual dependences, Strata logs *strata*: vectors of
//! per-processor memory-reference counters. A stratum is logged right
//! before the second access of an inter-processor dependence issues
//! (Figure 1(c) of the DeLorean paper), so the two references of every
//! dependence land in different stratum regions. Optionally WAR
//! dependences are ignored, shrinking the log ~25% at the cost of
//! multiple re-executions during replay.

use crate::dep::{DepKind, DependenceTracker};
use delorean_compress::{BitWriter, LogSize};
use delorean_sim::{AccessRecord, AccessSink};
use std::collections::HashMap;

/// The finished Strata log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrataLog {
    n_procs: u32,
    strata: Vec<Vec<u64>>,
    total_refs: u64,
    war_exposed_strata: u64,
}

impl StrataLog {
    /// Logged strata (vectors of per-processor reference counts since
    /// the previous stratum).
    pub fn strata(&self) -> &[Vec<u64>] {
        &self.strata
    }

    /// Number of strata.
    pub fn len(&self) -> usize {
        self.strata.len()
    }

    /// Whether nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }

    /// Memory references observed.
    pub fn total_references(&self) -> u64 {
        self.total_refs
    }

    /// Strata containing an *unlogged* WAR dependence. When WARs are
    /// not recorded, the paper notes replay must uncover them "at the
    /// cost of slowing down the replay with multiple re-executions":
    /// each exposed stratum is a region the replayer may have to run
    /// more than once.
    pub fn war_exposed_strata(&self) -> u64 {
        self.war_exposed_strata
    }

    /// Encodes each stratum as varint counters and measures.
    pub fn measure(&self) -> LogSize {
        let mut w = BitWriter::new();
        for s in &self.strata {
            for &c in s {
                w.write_varint(c, 8);
            }
        }
        let bits = w.bit_len();
        LogSize::from_bits(&w.into_bytes(), bits)
    }

    /// Compressed kilobytes per million memory references — the unit
    /// the Strata paper reports (2.2 KB/M refs for 4 processors).
    pub fn kb_per_million_refs(&self) -> f64 {
        if self.total_refs == 0 {
            return 0.0;
        }
        let bytes = self.measure().compressed_bits as f64 / 8.0;
        bytes / 1024.0 / (self.total_refs as f64 / 1e6)
    }
}

/// Records a Strata log from the SC access stream.
#[derive(Debug, Clone)]
pub struct StrataRecorder {
    n_procs: u32,
    log_wars: bool,
    tracker: DependenceTracker,
    /// Memory refs per processor since the last stratum.
    counts: Vec<u64>,
    /// Stratum index each (proc, icount) access belongs to — tracked
    /// per line by remembering the stratum of the last writer/readers.
    current_stratum: u64,
    /// Whether the current stratum region contains an unlogged WAR.
    current_has_war: bool,
    war_exposed_strata: u64,
    /// line -> stratum of its last writer.
    writer_stratum: HashMap<u64, u64>,
    /// line -> stratum of its readers since last write.
    reader_strata: HashMap<u64, Vec<u64>>,
    strata: Vec<Vec<u64>>,
    total_refs: u64,
}

impl StrataRecorder {
    /// Creates a recorder; `log_wars` selects whether WAR dependences
    /// also cut strata (the paper's faster-replay variant, +25% log).
    pub fn new(n_procs: u32, log_wars: bool) -> Self {
        assert!(n_procs > 0, "need at least one processor");
        Self {
            n_procs,
            log_wars,
            tracker: DependenceTracker::new(),
            counts: vec![0; n_procs as usize],
            current_stratum: 0,
            current_has_war: false,
            war_exposed_strata: 0,
            writer_stratum: HashMap::new(),
            reader_strata: HashMap::new(),
            strata: Vec::new(),
            total_refs: 0,
        }
    }

    fn cut(&mut self) {
        self.strata.push(self.counts.clone());
        for c in &mut self.counts {
            *c = 0;
        }
        if self.current_has_war {
            self.war_exposed_strata += 1;
            self.current_has_war = false;
        }
        self.current_stratum += 1;
    }

    /// Finishes recording.
    pub fn finish(mut self) -> StrataLog {
        if self.counts.iter().any(|&c| c > 0) {
            self.cut();
        }
        StrataLog {
            n_procs: self.n_procs,
            strata: self.strata,
            total_refs: self.total_refs,
            war_exposed_strata: self.war_exposed_strata,
        }
    }
}

impl AccessSink for StrataRecorder {
    fn record(&mut self, rec: AccessRecord) {
        self.total_refs += 1;
        // Does this access close a dependence whose source is in the
        // current stratum region? Then a stratum must be logged before
        // it issues.
        let deps = self.tracker.observe(&rec);
        let mut must_cut = false;
        for d in &deps {
            if !self.log_wars && d.kind == DepKind::War {
                // Unlogged WAR whose source read sits in the current
                // stratum region: replay may need to re-execute it.
                if self
                    .reader_strata
                    .get(&rec.line)
                    .is_some_and(|v| v.contains(&self.current_stratum))
                {
                    self.current_has_war = true;
                }
                continue;
            }
            let src_stratum = match d.kind {
                DepKind::Raw | DepKind::Waw => self.writer_stratum.get(&rec.line).copied(),
                DepKind::War => self
                    .reader_strata
                    .get(&rec.line)
                    .and_then(|v| v.iter().max().copied()),
            };
            if src_stratum == Some(self.current_stratum) {
                must_cut = true;
            }
        }
        if must_cut {
            self.cut();
        }
        // Update per-line stratum tags and counters.
        if rec.write {
            self.writer_stratum.insert(rec.line, self.current_stratum);
            self.reader_strata.remove(&rec.line);
        } else {
            self.reader_strata
                .entry(rec.line)
                .or_default()
                .push(self.current_stratum);
        }
        self.counts[rec.proc as usize] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(proc: u32, icount: u64, line: u64, write: bool) -> AccessRecord {
        AccessRecord {
            proc,
            icount,
            line,
            write,
        }
    }

    #[test]
    fn figure1c_logs_two_strata() {
        // Figure 1(c): deps 1:Wa->3:Ra? Simplified: two dependences,
        // each forcing a stratum so both references are separated.
        let mut s = StrataRecorder::new(3, true);
        s.record(acc(0, 1, 100, true)); // 1: Wa
        s.record(acc(1, 1, 300, true)); // 2: Wc
        s.record(acc(1, 2, 100, false)); // 2: Ra -> cut S0 before it
        s.record(acc(1, 3, 200, true)); // 2: Wb
        s.record(acc(2, 1, 300, false)); // 3: Rc -> source Wc in S0: already separated
        s.record(acc(0, 2, 200, true)); // 1: Wb -> WAW source in current stratum: cut
        let log = s.finish();
        assert!(log.len() >= 2, "got {} strata", log.len());
    }

    #[test]
    fn dependences_always_span_strata() {
        // Property: after recording, re-scan the stream and verify no
        // logged-kind dependence has both endpoints in one stratum.
        let mut s = StrataRecorder::new(2, true);
        let mut x = 999u64;
        let mut ic = [0u64; 2];
        let mut stream = Vec::new();
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            let p = ((x >> 20) % 2) as u32;
            ic[p as usize] += 1;
            stream.push(acc(p, ic[p as usize], (x >> 13) % 16, x & 1 == 0));
        }
        for r in &stream {
            s.record(*r);
        }
        let log = s.finish();
        // Reconstruct stratum membership per access.
        let mut stratum_of = Vec::new();
        let mut idx = 0usize;
        let mut consumed = vec![0u64; 2];
        for r in &stream {
            while idx < log.len() && consumed == log.strata()[idx] {
                idx += 1;
                consumed = vec![0; 2];
            }
            stratum_of.push(idx);
            consumed[r.proc as usize] += 1;
        }
        // Check every dependence spans strata.
        let mut tracker = DependenceTracker::new();
        let mut pos_of = std::collections::HashMap::new();
        for (i, r) in stream.iter().enumerate() {
            for d in tracker.observe(r) {
                let src_pos = pos_of[&(d.src_proc, d.src_icount)];
                assert!(
                    stratum_of[src_pos] < stratum_of[i],
                    "dependence {:?} within stratum {}",
                    d,
                    stratum_of[i]
                );
            }
            pos_of.insert((r.proc, r.icount), i);
        }
    }

    #[test]
    fn unlogged_wars_are_counted_as_replay_exposure() {
        let mut logged = StrataRecorder::new(2, true);
        let mut unlogged = StrataRecorder::new(2, false);
        // P0 reads, P1 writes the same line: a WAR in one stratum.
        for r in [acc(0, 1, 5, false), acc(1, 1, 5, true), acc(0, 2, 6, false)] {
            logged.record(r);
            unlogged.record(r);
        }
        assert_eq!(
            logged.finish().war_exposed_strata(),
            0,
            "logged WARs cut strata"
        );
        assert!(unlogged.finish().war_exposed_strata() > 0);
    }

    #[test]
    fn ignoring_wars_shrinks_the_log() {
        let mk = |wars: bool| {
            let mut s = StrataRecorder::new(2, wars);
            let mut ic = [0u64; 2];
            for i in 0..1000u64 {
                let p = (i % 2) as u32;
                ic[p as usize] += 1;
                // Alternating read/write on a shared line generates
                // RAW, WAR and WAW dependences.
                s.record(acc(p, ic[p as usize], 5, i % 3 == 0));
            }
            s.finish().len()
        };
        assert!(mk(false) <= mk(true));
    }

    #[test]
    fn kb_per_million_refs_is_finite() {
        let mut s = StrataRecorder::new(4, true);
        let mut ic = [0u64; 4];
        for i in 0..4000u64 {
            let p = (i % 4) as u32;
            ic[p as usize] += 1;
            s.record(acc(p, ic[p as usize], i % 32, i % 5 == 0));
        }
        let log = s.finish();
        assert!(log.total_references() == 4000);
        assert!(log.kb_per_million_refs() > 0.0);
    }
}
