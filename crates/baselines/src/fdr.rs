//! The Flight Data Recorder (FDR) baseline.
//!
//! FDR observes coherence traffic and logs cross-processor dependences
//! in a Memory Races Log, suppressing those transitively implied by
//! previously logged ones (Netzer's Transitive Reduction — Figure 1(a)
//! of the DeLorean paper). The hardware keeps, per processor, a vector
//! of instruction counts bounding what the processor's execution
//! already transitively depends on; we implement the same *conservative*
//! reduction (no vector join through third processors), which never
//! suppresses a needed dependence and may log slightly more than the
//! optimal reduction.

use crate::dep::{Dependence, DependenceTracker};
use delorean_compress::{BitWriter, LogSize};
use delorean_sim::{AccessRecord, AccessSink};

/// One Memory-Races-Log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoggedDep {
    /// Source processor.
    pub src_proc: u32,
    /// Source instruction count.
    pub src_icount: u64,
    /// Destination processor.
    pub dst_proc: u32,
    /// Destination instruction count.
    pub dst_icount: u64,
}

impl From<Dependence> for LoggedDep {
    fn from(d: Dependence) -> Self {
        LoggedDep {
            src_proc: d.src_proc,
            src_icount: d.src_icount,
            dst_proc: d.dst_proc,
            dst_icount: d.dst_icount,
        }
    }
}

/// The finished Memory Races Log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdrLog {
    n_procs: u32,
    entries: Vec<LoggedDep>,
    total_deps: u64,
}

impl FdrLog {
    /// Processor count the log was recorded on.
    pub fn n_procs(&self) -> u32 {
        self.n_procs
    }

    /// Logged entries, in global order.
    pub fn entries(&self) -> &[LoggedDep] {
        &self.entries
    }

    /// Number of logged entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cross-processor dependences observed before reduction.
    pub fn total_dependences(&self) -> u64 {
        self.total_deps
    }

    /// Encodes and measures the log: per entry, source and destination
    /// processor IDs plus varint-delta instruction counts (per-stream
    /// deltas), then LZ77.
    pub fn measure(&self) -> LogSize {
        let mut w = BitWriter::new();
        let proc_bits = 32 - (self.n_procs - 1).leading_zeros().max(1);
        let mut last_src = vec![0u64; self.n_procs as usize];
        let mut last_dst = vec![0u64; self.n_procs as usize];
        for e in &self.entries {
            w.write_bits(u64::from(e.src_proc), proc_bits);
            w.write_bits(u64::from(e.dst_proc), proc_bits);
            let ds = e.src_icount.abs_diff(last_src[e.src_proc as usize]);
            let dd = e.dst_icount.abs_diff(last_dst[e.dst_proc as usize]);
            last_src[e.src_proc as usize] = e.src_icount;
            last_dst[e.dst_proc as usize] = e.dst_icount;
            w.write_varint(ds, 8);
            w.write_varint(dd, 8);
        }
        let bits = w.bit_len();
        LogSize::from_bits(&w.into_bytes(), bits)
    }
}

/// Records a Memory Races Log from the SC access stream.
#[derive(Debug, Clone)]
pub struct FdrRecorder {
    n_procs: u32,
    tracker: DependenceTracker,
    /// `icv[p][q]`: source icount of `q` that `p` is already known to
    /// be ordered after.
    icv: Vec<Vec<u64>>,
    entries: Vec<LoggedDep>,
    total_deps: u64,
}

impl FdrRecorder {
    /// Creates a recorder for an `n_procs` machine.
    ///
    /// # Panics
    ///
    /// Panics if `n_procs` is zero.
    pub fn new(n_procs: u32) -> Self {
        assert!(n_procs > 0, "need at least one processor");
        Self {
            n_procs,
            tracker: DependenceTracker::new(),
            icv: vec![vec![0; n_procs as usize]; n_procs as usize],
            entries: Vec::new(),
            total_deps: 0,
        }
    }

    pub(crate) fn tracker_observe(&mut self, rec: &AccessRecord) -> Vec<Dependence> {
        self.tracker.observe(rec)
    }

    pub(crate) fn log_dep(&mut self, d: Dependence, slack: u64) {
        self.total_deps += 1;
        let known = self.icv[d.dst_proc as usize][d.src_proc as usize];
        if known >= d.src_icount {
            return; // transitively implied by an earlier logged entry
        }
        self.entries.push(d.into());
        self.icv[d.dst_proc as usize][d.src_proc as usize] = d.src_icount + slack;
    }

    /// Finishes recording.
    pub fn finish(self) -> FdrLog {
        FdrLog {
            n_procs: self.n_procs,
            entries: self.entries,
            total_deps: self.total_deps,
        }
    }
}

impl AccessSink for FdrRecorder {
    fn record(&mut self, rec: AccessRecord) {
        for d in self.tracker.observe(&rec) {
            self.log_dep(d, 0);
        }
    }
}

/// An *optimal* Netzer reduction for comparison with the hardware's
/// conservative one: it tracks full vector clocks per processor
/// (including transitive knowledge through third processors), so it
/// suppresses every dependence that is implied by any combination of
/// logged entries and program order. Hardware cannot afford the
/// historical vector-clock storage this needs; FDR's per-processor
/// instruction-count vectors are the practical approximation.
#[derive(Debug, Clone)]
pub struct OptimalReduction {
    n: usize,
    tracker: DependenceTracker,
    /// Per-processor checkpoints (icount, vector clock), ascending.
    checkpoints: Vec<Vec<(u64, Vec<u64>)>>,
    entries: Vec<LoggedDep>,
    total_deps: u64,
}

impl OptimalReduction {
    /// Creates a reducer for `n_procs` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n_procs` is zero.
    pub fn new(n_procs: u32) -> Self {
        assert!(n_procs > 0, "need at least one processor");
        Self {
            n: n_procs as usize,
            tracker: DependenceTracker::new(),
            checkpoints: vec![Vec::new(); n_procs as usize],
            entries: Vec::new(),
            total_deps: 0,
        }
    }

    fn vc_at(&self, p: usize, i: u64) -> Vec<u64> {
        let mut vc = self.checkpoints[p]
            .iter()
            .rev()
            .find(|(ci, _)| *ci <= i)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| vec![0; self.n]);
        vc[p] = vc[p].max(i);
        vc
    }

    /// Finishes and returns the reduced log.
    pub fn finish(self) -> FdrLog {
        FdrLog {
            n_procs: self.n as u32,
            entries: self.entries,
            total_deps: self.total_deps,
        }
    }
}

impl AccessSink for OptimalReduction {
    fn record(&mut self, rec: AccessRecord) {
        for d in self.tracker.observe(&rec) {
            self.total_deps += 1;
            let dst = d.dst_proc as usize;
            let src = d.src_proc as usize;
            let vc = self.vc_at(dst, d.dst_icount);
            if vc[src] >= d.src_icount {
                continue; // implied transitively
            }
            // Log and merge the source's knowledge at its icount.
            let src_vc = self.vc_at(src, d.src_icount);
            let mut new_vc = vc;
            for q in 0..self.n {
                new_vc[q] = new_vc[q].max(src_vc[q]);
            }
            self.checkpoints[dst].push((d.dst_icount, new_vc));
            self.entries.push(d.into());
        }
    }
}

/// Verifies that a reduced log still implies every true dependence:
/// the soundness property of the transitive reduction.
///
/// `logged` and `all` must be in the global observation order. Returns
/// the first uncovered dependence, or `None` when the log is sound.
pub fn verify_log_covers(
    n_procs: u32,
    logged: &[LoggedDep],
    all: &[Dependence],
) -> Option<Dependence> {
    let n = n_procs as usize;
    // Per-processor checkpoints of the transitive vector clock, as a
    // step function over the processor's instruction counts.
    let mut checkpoints: Vec<Vec<(u64, Vec<u64>)>> = vec![Vec::new(); n];
    let vc_at = |cps: &Vec<Vec<(u64, Vec<u64>)>>, p: usize, i: u64| -> Vec<u64> {
        let mut vc = cps[p]
            .iter()
            .rev()
            .find(|(ci, _)| *ci <= i)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| vec![0; n]);
        vc[p] = vc[p].max(i);
        vc
    };
    // `logged` is a subsequence of `all` in the same global order
    // (every logged entry was created from one observed dependence), so
    // merge-walk the two: apply a logged entry to the happens-before
    // state right before checking the dependence it came from.
    let mut li = 0usize;
    for d in all {
        if li < logged.len() && logged[li] == LoggedDep::from(*d) {
            let e = logged[li];
            li += 1;
            let src_vc = vc_at(&checkpoints, e.src_proc as usize, e.src_icount);
            let mut new_vc = vc_at(&checkpoints, e.dst_proc as usize, e.dst_icount);
            for q in 0..n {
                new_vc[q] = new_vc[q].max(src_vc[q]);
            }
            checkpoints[e.dst_proc as usize].push((e.dst_icount, new_vc));
        }
        let vc = vc_at(&checkpoints, d.dst_proc as usize, d.dst_icount);
        if vc[d.src_proc as usize] < d.src_icount {
            return Some(*d);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_sim::AccessRecord;

    fn acc(proc: u32, icount: u64, line: u64, write: bool) -> AccessRecord {
        AccessRecord {
            proc,
            icount,
            line,
            write,
        }
    }

    #[test]
    fn transitive_reduction_suppresses_figure1a() {
        // Figure 1(a): P1 writes a then b; P2 writes b then reads a.
        // The W(b)->W(b) dependence is logged; the W(a)->R(a) one is
        // implied and suppressed.
        let mut fdr = FdrRecorder::new(2);
        fdr.record(acc(0, 1, 100, true)); // 1: Wa
        fdr.record(acc(0, 2, 200, true)); // 1: Wb
        fdr.record(acc(1, 1, 200, true)); // 2: Wb  -> log (P0,2)->(P1,1)
        fdr.record(acc(1, 2, 100, false)); // 2: Ra -> implied, suppressed
        let log = fdr.finish();
        assert_eq!(log.len(), 1);
        assert_eq!(log.total_dependences(), 2, "Wb->Wb and Wa->Ra");
    }

    #[test]
    fn unrelated_dependences_are_both_logged() {
        let mut fdr = FdrRecorder::new(2);
        fdr.record(acc(0, 1, 100, true));
        fdr.record(acc(1, 1, 100, false)); // logged
        fdr.record(acc(0, 5, 200, true));
        fdr.record(acc(1, 9, 200, false)); // newer source: logged again
        let log = fdr.finish();
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn reduced_log_covers_all_dependences() {
        // Random-ish interleaved stream; validate soundness.
        let mut fdr = FdrRecorder::new(3);
        let mut tracker = DependenceTracker::new();
        let mut all = Vec::new();
        let mut icounts = [0u64; 3];
        let mut x = 12345u64;
        for _ in 0..3000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let proc = (x >> 33) as u32 % 3;
            let line = (x >> 17) % 24;
            let write = x & 1 == 0;
            icounts[proc as usize] += 1 + (x >> 55) % 4;
            let rec = acc(proc, icounts[proc as usize], line, write);
            all.extend(tracker.observe(&rec));
            fdr.record(rec);
        }
        let log = fdr.finish();
        assert!(log.len() as u64 <= log.total_dependences());
        assert!(!log.is_empty());
        assert_eq!(verify_log_covers(3, log.entries(), &all), None);
    }

    #[test]
    fn optimal_reduction_never_logs_more_than_conservative() {
        let mut fdr = FdrRecorder::new(3);
        let mut opt = OptimalReduction::new(3);
        let mut tracker = DependenceTracker::new();
        let mut all = Vec::new();
        let mut icounts = [0u64; 3];
        let mut x = 777u64;
        for _ in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let proc = (x >> 33) as u32 % 3;
            icounts[proc as usize] += 1 + (x >> 55) % 3;
            let rec = AccessRecord {
                proc,
                icount: icounts[proc as usize],
                line: (x >> 17) % 20,
                write: x & 1 == 0,
            };
            all.extend(tracker.observe(&rec));
            fdr.record(rec);
            opt.record(rec);
        }
        let cons = fdr.finish();
        let optimal = opt.finish();
        assert!(
            optimal.len() <= cons.len(),
            "optimal ({}) must not exceed conservative ({})",
            optimal.len(),
            cons.len()
        );
        assert!(!optimal.is_empty());
        // And it remains sound.
        assert_eq!(verify_log_covers(3, optimal.entries(), &all), None);
    }

    #[test]
    fn optimal_exploits_third_party_transitivity() {
        // P0 -> P1, P1 -> P2, then P0 -> P2 (implied through P1).
        // The conservative reduction logs all three; the optimal one
        // suppresses the third.
        let stream = [
            acc(0, 10, 1, true),
            acc(1, 10, 1, false), // P0 -> P1
            acc(1, 20, 2, true),
            acc(2, 10, 2, false), // P1 -> P2 (carries P0@10)
            acc(2, 20, 1, false), // P0@10 -> P2: implied transitively
        ];
        let mut fdr = FdrRecorder::new(3);
        let mut opt = OptimalReduction::new(3);
        for r in stream {
            fdr.record(r);
            opt.record(r);
        }
        assert_eq!(fdr.finish().len(), 3, "conservative logs the third dep");
        assert_eq!(opt.finish().len(), 2, "optimal suppresses it");
    }

    #[test]
    fn measure_is_nonzero_and_compressible() {
        let mut fdr = FdrRecorder::new(2);
        for i in 0..500u64 {
            fdr.record(acc(0, i * 2 + 1, i % 8, true));
            fdr.record(acc(1, i * 2 + 2, i % 8, false));
        }
        let log = fdr.finish();
        let size = log.measure();
        assert!(size.raw_bits > 0);
        assert!(size.compressed_bits <= size.raw_bits);
    }
}
