//! Baseline race recorders: FDR, Basic RTR and Strata.
//!
//! DeLorean's evaluation compares its log sizes against the published
//! numbers of Basic RTR (~1 compressed byte per processor per
//! kilo-instruction) and Strata (2.2 KB per million references for
//! 4 processors). Since neither artifact is available, this crate
//! implements all three recorders from scratch over the SC executor's
//! interleaved access stream ([`delorean_sim::AccessSink`]):
//!
//! * [`FdrRecorder`] — logs individual cross-processor dependences,
//!   suppressed by a (conservative) Netzer transitive reduction.
//! * [`RtrRecorder`] — FDR plus Regulated TR: artificially *stricter*
//!   dependences widen the suppression window, and recurring
//!   dependences are vector-compacted.
//! * [`StrataRecorder`] — logs per-processor reference-count vectors
//!   (strata) cut before the second access of each cross-processor
//!   dependence.
//!
//! The paper's published reference values are exported from
//! [`mod@reference`] so benchmarks can print both the measured and the
//! published comparison lines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dep;
mod fdr;
pub mod reference;
mod rtr;
mod strata;

pub use dep::{DepKind, Dependence, DependenceTracker};
pub use fdr::{verify_log_covers, FdrLog, FdrRecorder, LoggedDep, OptimalReduction};
pub use rtr::{RtrLog, RtrRecorder};
pub use strata::{StrataLog, StrataRecorder};

use delorean_sim::{AccessSink, ConsistencyModel, ExecResult, Executor, RunSpec};

/// Runs `spec` on the aggressive-SC baseline machine, feeding the
/// interleaved access stream to `recorder`.
///
/// # Examples
///
/// ```
/// use delorean_baselines::{run_baseline, FdrRecorder};
/// use delorean_isa::workload::WorkloadSpec;
/// use delorean_sim::RunSpec;
///
/// let spec = RunSpec::new(WorkloadSpec::test_spec(), 2, 3, 2_000).unwrap();
/// let mut fdr = FdrRecorder::new(2);
/// let result = run_baseline(&spec, &mut fdr);
/// assert!(result.mem_ops > 0);
/// ```
pub fn run_baseline(spec: &RunSpec, recorder: &mut dyn AccessSink) -> ExecResult {
    Executor::new(ConsistencyModel::Sc).run_with(spec, recorder)
}
