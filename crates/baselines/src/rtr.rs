//! The Basic Regulated Transitive Reduction (RTR) baseline.
//!
//! RTR improves on FDR's reduction two ways (Figure 1(b) of the
//! DeLorean paper):
//!
//! 1. **Regulation**: it judiciously logs *stricter* artificial
//!    dependences so Netzer's reduction can eliminate more of the real
//!    ones. We model this by advancing the suppression window past the
//!    logged source point by a regulation slack, so nearby future
//!    dependences from the same source processor are implied.
//! 2. **Vector compaction**: recurring dependences between the same
//!    processor pair with constant strides are encoded as one vector
//!    entry `(base, stride, count)`.

use crate::dep::Dependence;
use crate::fdr::{FdrRecorder, LoggedDep};
use delorean_compress::{BitWriter, LogSize};
use delorean_sim::{AccessRecord, AccessSink};

/// The finished Basic-RTR log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtrLog {
    n_procs: u32,
    entries: Vec<LoggedDep>,
    total_deps: u64,
}

impl RtrLog {
    /// Logged (regulated) entries.
    pub fn entries(&self) -> &[LoggedDep] {
        &self.entries
    }

    /// Number of logged entries before vector compaction.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cross-processor dependences observed before reduction.
    pub fn total_dependences(&self) -> u64 {
        self.total_deps
    }

    /// Encodes with per-(src,dst)-pair stride run-length compaction,
    /// then LZ77.
    pub fn measure(&self) -> LogSize {
        let proc_bits = 32 - (self.n_procs - 1).leading_zeros().max(1);
        let mut w = BitWriter::new();
        let mut last_src = vec![0u64; self.n_procs as usize];
        let mut last_dst = vec![0u64; self.n_procs as usize];
        let mut i = 0usize;
        while i < self.entries.len() {
            let e = self.entries[i];
            // Find a stride run on the same processor pair.
            let mut run = 1usize;
            if i + 1 < self.entries.len() {
                let f = self.entries[i + 1];
                if f.src_proc == e.src_proc && f.dst_proc == e.dst_proc {
                    let ds = f.src_icount.wrapping_sub(e.src_icount);
                    let dd = f.dst_icount.wrapping_sub(e.dst_icount);
                    while i + run + 1 < self.entries.len() {
                        let a = self.entries[i + run];
                        let b = self.entries[i + run + 1];
                        if b.src_proc == e.src_proc
                            && b.dst_proc == e.dst_proc
                            && a.src_proc == e.src_proc
                            && a.dst_proc == e.dst_proc
                            && b.src_icount.wrapping_sub(a.src_icount) == ds
                            && b.dst_icount.wrapping_sub(a.dst_icount) == dd
                        {
                            run += 1;
                        } else {
                            break;
                        }
                    }
                    if run >= 2 {
                        run += 1; // include the run's final element
                    }
                }
            }
            if run >= 3 {
                // Vector entry: flag, pair, delta-coded base, strides,
                // count.
                let last = self.entries[i + run - 1];
                w.write_bit(true);
                w.write_bits(u64::from(e.src_proc), proc_bits);
                w.write_bits(u64::from(e.dst_proc), proc_bits);
                w.write_varint(e.src_icount.abs_diff(last_src[e.src_proc as usize]), 8);
                w.write_varint(e.dst_icount.abs_diff(last_dst[e.dst_proc as usize]), 8);
                w.write_varint((last.src_icount - e.src_icount) / (run as u64 - 1), 8);
                w.write_varint((last.dst_icount - e.dst_icount) / (run as u64 - 1), 8);
                w.write_varint(run as u64, 8);
                last_src[e.src_proc as usize] = last.src_icount;
                last_dst[e.dst_proc as usize] = last.dst_icount;
                i += run;
            } else {
                w.write_bit(false);
                w.write_bits(u64::from(e.src_proc), proc_bits);
                w.write_bits(u64::from(e.dst_proc), proc_bits);
                w.write_varint(e.src_icount.abs_diff(last_src[e.src_proc as usize]), 8);
                w.write_varint(e.dst_icount.abs_diff(last_dst[e.dst_proc as usize]), 8);
                last_src[e.src_proc as usize] = e.src_icount;
                last_dst[e.dst_proc as usize] = e.dst_icount;
                i += 1;
            }
        }
        let bits = w.bit_len();
        LogSize::from_bits(&w.into_bytes(), bits)
    }
}

/// Records a Basic-RTR log from the SC access stream.
#[derive(Debug, Clone)]
pub struct RtrRecorder {
    inner: FdrRecorder,
    slack: u64,
}

impl RtrRecorder {
    /// Default regulation slack (instructions past the logged source
    /// point that artificial dependences cover).
    pub const DEFAULT_SLACK: u64 = 256;

    /// Creates a recorder with the default slack.
    pub fn new(n_procs: u32) -> Self {
        Self::with_slack(n_procs, Self::DEFAULT_SLACK)
    }

    /// Creates a recorder with an explicit regulation slack.
    pub fn with_slack(n_procs: u32, slack: u64) -> Self {
        Self {
            inner: FdrRecorder::new(n_procs),
            slack,
        }
    }

    /// Finishes recording.
    pub fn finish(self) -> RtrLog {
        let log = self.inner.finish();
        RtrLog {
            n_procs: log.n_procs(),
            total_deps: log.total_dependences(),
            entries: log.entries().to_vec(),
        }
    }
}

impl AccessSink for RtrRecorder {
    fn record(&mut self, rec: AccessRecord) {
        let slack = self.slack;
        let deps: Vec<Dependence> = self.inner_tracker_observe(&rec);
        for d in deps {
            self.inner.log_dep(d, slack);
        }
    }
}

impl RtrRecorder {
    fn inner_tracker_observe(&mut self, rec: &AccessRecord) -> Vec<Dependence> {
        // Delegate to the inner recorder's tracker.
        self.inner.tracker_observe(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(proc: u32, icount: u64, line: u64, write: bool) -> AccessRecord {
        AccessRecord {
            proc,
            icount,
            line,
            write,
        }
    }

    #[test]
    fn regulation_suppresses_nearby_dependences() {
        let mut fdr = FdrRecorder::new(2);
        let mut rtr = RtrRecorder::with_slack(2, 100);
        let stream = [
            acc(0, 10, 1, true),
            acc(1, 5, 1, false), // logged by both
            acc(0, 20, 2, true),
            acc(1, 8, 2, false), // src 20 within slack of 10+100: RTR skips
        ];
        for r in stream {
            fdr.record(r);
            rtr.record(r);
        }
        assert_eq!(fdr.finish().len(), 2);
        assert_eq!(rtr.finish().len(), 1);
    }

    #[test]
    fn vector_compaction_shrinks_strided_patterns() {
        // Perfectly strided producer/consumer dependences.
        let mut rtr = RtrRecorder::with_slack(2, 0);
        for i in 0..200u64 {
            rtr.record(acc(0, 1000 + i * 50, i, true));
            rtr.record(acc(1, 2000 + i * 50, i, false));
        }
        let log = rtr.finish();
        assert_eq!(log.len(), 200);
        let size = log.measure();
        // The compacted form must be far below one entry per dependence
        // (each plain entry costs >= 20 bits).
        assert!(
            size.raw_bits < 200 * 20 / 4,
            "vector compaction ineffective: {} bits",
            size.raw_bits
        );
    }

    #[test]
    fn irregular_patterns_fall_back_to_single_entries() {
        let mut rtr = RtrRecorder::with_slack(2, 0);
        let mut x = 7u64;
        for i in 0..50u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            rtr.record(acc(0, 1 + i * 97 + (x % 13), i, true));
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            rtr.record(acc(1, 5 + i * 89 + (x % 17), i, false));
        }
        let log = rtr.finish();
        assert_eq!(log.len(), 50);
        assert!(log.measure().raw_bits > 0);
    }
}
