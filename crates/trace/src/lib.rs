//! # delorean-trace: structured JSONL tracing for DeLorean sessions
//!
//! A [`JsonlTracer`] is a [`HookStage`] that serializes the typed
//! [`SubstrateEvent`] stream of a [`Session`](delorean::Session) into
//! newline-delimited JSON: one `begin` line with the stream metadata,
//! one line per substrate event (`commit` lines are the per-commit
//! spans: committer, size, truncation reason, global slot), and one
//! `end` line with the final statistics. Stages are observation-only by
//! construction, so attaching a tracer never perturbs the execution,
//! its logs, or its determinism digest; when tracing is disabled no
//! stage is stacked at all and the pipeline runs the exact pre-trace
//! fast path.
//!
//! [`validate`] is the matching reader: it checks a trace line-by-line
//! against the schema (`delorean analyze --trace` drives it) and
//! returns a [`TraceSummary`].
//!
//! ```
//! use delorean::{Machine, Mode};
//! use delorean_isa::workload;
//! use delorean_trace::{validate, JsonlTracer};
//!
//! let m = Machine::builder().mode(Mode::OrderOnly).procs(2).budget(4_000).build();
//! let mut tracer = JsonlTracer::new(Vec::new());
//! let rec = m
//!     .session()
//!     .with_stage(&mut tracer)
//!     .record(workload::by_name("fft").unwrap(), 7);
//! let (bytes, err) = tracer.finish();
//! assert!(err.is_none());
//! let summary = validate(&bytes[..]).expect("tracer output validates");
//! assert_eq!(summary.commits, rec.stats.total_commits);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use delorean::stream::StreamMeta;
use delorean::{HookStage, Mode, SubstrateEvent};
use delorean_chunk::{Committer, RunStats, TruncationReason};
use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

// ---------------------------------------------------------------------------
// Tag vocabularies (shared by the emitter and the validator)
// ---------------------------------------------------------------------------

/// The stable lowercase tag a mode carries in trace lines.
pub fn mode_tag(mode: Mode) -> &'static str {
    match mode {
        Mode::OrderSize => "order_size",
        Mode::OrderOnly => "order_only",
        Mode::PicoLog => "pico_log",
    }
}

/// The stable lowercase tag a truncation reason carries in trace lines.
pub fn truncation_tag(t: TruncationReason) -> &'static str {
    match t {
        TruncationReason::StandardSize => "standard_size",
        TruncationReason::Uncached => "uncached",
        TruncationReason::BudgetEnd => "budget_end",
        TruncationReason::Overflow => "overflow",
        TruncationReason::Collision => "collision",
    }
}

const TRUNCATION_TAGS: [&str; 5] = [
    "standard_size",
    "uncached",
    "budget_end",
    "overflow",
    "collision",
];

fn committer_tag(c: Committer) -> String {
    match c {
        Committer::Proc(p) => format!("p{p}"),
        Committer::Dma => "dma".to_string(),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The tracer stage
// ---------------------------------------------------------------------------

/// A [`HookStage`] that writes the substrate event stream as JSONL.
///
/// Every line is one self-contained JSON object with an `"event"`
/// discriminator; the first line is always `begin`, the last (for a run
/// that completed) `end`. I/O errors are latched on first occurrence —
/// the stage goes quiet rather than panicking inside the engine — and
/// surface from [`finish`](JsonlTracer::finish).
#[derive(Debug)]
pub struct JsonlTracer<W: Write> {
    out: W,
    mode: Option<Mode>,
    lines: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlTracer<W> {
    /// A tracer writing JSONL to `out`.
    pub fn new(out: W) -> Self {
        Self {
            out,
            mode: None,
            lines: 0,
            error: None,
        }
    }

    /// Lines emitted so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Consumes the tracer, returning the writer and the first latched
    /// I/O error, if any.
    pub fn finish(mut self) -> (W, Option<io::Error>) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
        (self.out, self.error)
    }

    fn line(&mut self, s: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self
            .out
            .write_all(s.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
            return;
        }
        self.lines += 1;
    }

    fn mode_str(&self) -> &'static str {
        self.mode.map_or("unknown", mode_tag)
    }
}

impl<W: Write> HookStage for JsonlTracer<W> {
    fn name(&self) -> &'static str {
        "jsonl-trace"
    }

    fn on_begin(&mut self, meta: &StreamMeta) {
        self.mode = Some(meta.mode);
        let line = format!(
            "{{\"event\":\"begin\",\"mode\":\"{}\",\"procs\":{},\"chunk_size\":{},\"budget\":{},\"workload\":\"{}\",\"app_seed\":{},\"initial_mem_hash\":\"{:#018x}\",\"interval\":{}}}",
            mode_tag(meta.mode),
            meta.n_procs,
            meta.chunk_size,
            meta.budget,
            json_escape(meta.workload.name),
            meta.app_seed,
            meta.initial_mem_hash,
            meta.interval.is_some(),
        );
        self.line(&line);
    }

    fn on_event(&mut self, time: u64, ev: &SubstrateEvent) {
        let line = event_line(time, self.mode_str(), ev);
        self.line(&line);
    }

    fn on_end(&mut self, stats: &RunStats) {
        let line = format!(
            "{{\"event\":\"end\",\"cycles\":{},\"commits\":{},\"squashes\":{},\"interrupts\":{},\"dma_commits\":{},\"mem_hash\":\"{:#018x}\"}}",
            stats.cycles,
            stats.total_commits,
            stats.squashes,
            stats.interrupts,
            stats.dma_commits,
            stats.digest.mem_hash,
        );
        self.line(&line);
    }
}

/// Serializes one [`SubstrateEvent`] as a trace line (no trailing
/// newline). This is the single emitter behind both [`JsonlTracer`]
/// and `delorean inspect --json`, so every consumer of the schema
/// shares one source of truth. `mode` is the [`mode_tag`] of the run.
pub fn event_line(time: u64, mode: &str, ev: &SubstrateEvent) -> String {
    match *ev {
        SubstrateEvent::ChunkStart { core, index, target } => format!(
            "{{\"event\":\"chunk_start\",\"t\":{time},\"core\":{core},\"chunk\":{index},\"target\":{target}}}"
        ),
        SubstrateEvent::Commit {
            committer,
            chunk_index,
            size,
            truncation,
            global_slot,
            interrupt,
            io_loads,
            dma_words,
        } => format!(
            "{{\"event\":\"commit\",\"t\":{time},\"mode\":\"{}\",\"committer\":\"{}\",\"chunk\":{chunk_index},\"size\":{size},\"truncation\":\"{}\",\"slot\":{global_slot},\"interrupt\":{interrupt},\"io_loads\":{io_loads},\"dma_words\":{dma_words}}}",
            json_escape(mode),
            committer_tag(committer),
            truncation_tag(truncation),
        ),
        SubstrateEvent::Interrupt { core, vector } => format!(
            "{{\"event\":\"irq\",\"t\":{time},\"core\":{core},\"vector\":{vector}}}"
        ),
        SubstrateEvent::Dma { words } => {
            format!("{{\"event\":\"dma\",\"t\":{time},\"words\":{words}}}")
        }
        SubstrateEvent::Squash { core, chunks, insts } => format!(
            "{{\"event\":\"squash\",\"t\":{time},\"core\":{core},\"chunks\":{chunks},\"insts\":{insts}}}"
        ),
        SubstrateEvent::SegmentFlush {
            segments,
            bytes,
            commits,
        } => format!(
            "{{\"event\":\"segment_flush\",\"t\":{time},\"segments\":{segments},\"bytes\":{bytes},\"commits\":{commits}}}"
        ),
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON value model + parser (offline environment: no serde)
// ---------------------------------------------------------------------------

/// A parsed JSON value, as produced by the trace validator's reader.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as f64; trace numbers are small integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, key-ordered.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.eat_lit("null").map(|()| Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Strings arrive as valid UTF-8; copy the next char.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

/// Parses one JSON value from `s`, requiring it to consume the whole
/// input.
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at {}", p.pos));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Trace validation
// ---------------------------------------------------------------------------

/// What a validated trace contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total JSONL lines.
    pub lines: u64,
    /// The mode tag from the `begin` line.
    pub mode: String,
    /// The workload name from the `begin` line.
    pub workload: String,
    /// Processor count from the `begin` line.
    pub procs: u64,
    /// `commit` lines seen (must match the `end` line's count).
    pub commits: u64,
    /// `chunk_start` lines seen.
    pub chunk_starts: u64,
    /// `squash` lines seen.
    pub squashes: u64,
    /// `irq` lines seen.
    pub interrupts: u64,
    /// `segment_flush` lines seen.
    pub segment_flushes: u64,
    /// Simulated cycles from the `end` line.
    pub cycles: u64,
}

/// A schema violation at a specific trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number.
    pub line: u64,
    /// What was wrong.
    pub detail: String,
}

impl core::fmt::Display for TraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for TraceError {}

fn err(line: u64, detail: impl Into<String>) -> TraceError {
    TraceError {
        line,
        detail: detail.into(),
    }
}

fn get_u64(obj: &BTreeMap<String, Json>, key: &str, line: u64) -> Result<u64, TraceError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| err(line, format!("missing or non-integer field \"{key}\"")))
}

fn get_str<'j>(
    obj: &'j BTreeMap<String, Json>,
    key: &str,
    line: u64,
) -> Result<&'j str, TraceError> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| err(line, format!("missing or non-string field \"{key}\"")))
}

/// Validates a JSONL trace read from `input` against the
/// [`JsonlTracer`] schema: a `begin` first line, an `end` last line, a
/// well-formed object per line, known tags, non-decreasing event
/// times, strictly increasing commit slots, and an `end` commit count
/// that matches the `commit` lines.
///
/// # Errors
///
/// Returns the first [`TraceError`] encountered.
pub fn validate<R: io::Read>(input: R) -> Result<TraceSummary, TraceError> {
    let reader = io::BufReader::new(input);
    let mut lineno: u64 = 0;
    let mut begin: Option<(String, String, u64)> = None;
    let mut end: Option<(u64, u64)> = None;
    let mut commits = 0u64;
    let mut chunk_starts = 0u64;
    let mut squashes = 0u64;
    let mut interrupts = 0u64;
    let mut segment_flushes = 0u64;
    let mut last_time = 0u64;
    let mut last_slot = 0u64;
    for raw in reader.lines() {
        lineno += 1;
        let raw = raw.map_err(|e| err(lineno, format!("I/O error: {e}")))?;
        if raw.trim().is_empty() {
            return Err(err(lineno, "blank line in trace"));
        }
        let Json::Obj(obj) = parse_json(&raw).map_err(|e| err(lineno, e))? else {
            return Err(err(lineno, "line is not a JSON object"));
        };
        if end.is_some() {
            return Err(err(lineno, "content after the \"end\" line"));
        }
        let kind = get_str(&obj, "event", lineno)?.to_string();
        if lineno == 1 && kind != "begin" {
            return Err(err(lineno, "trace must start with a \"begin\" line"));
        }
        if lineno > 1 && kind == "begin" {
            return Err(err(lineno, "duplicate \"begin\" line"));
        }
        if kind != "begin" && kind != "end" {
            let t = get_u64(&obj, "t", lineno)?;
            if t < last_time {
                return Err(err(
                    lineno,
                    format!("event time went backwards: {t} after {last_time}"),
                ));
            }
            last_time = t;
        }
        match kind.as_str() {
            "begin" => {
                let mode = get_str(&obj, "mode", lineno)?;
                if !["order_size", "order_only", "pico_log"].contains(&mode) {
                    return Err(err(lineno, format!("unknown mode tag \"{mode}\"")));
                }
                let workload = get_str(&obj, "workload", lineno)?.to_string();
                let procs = get_u64(&obj, "procs", lineno)?;
                get_u64(&obj, "chunk_size", lineno)?;
                get_u64(&obj, "budget", lineno)?;
                get_u64(&obj, "app_seed", lineno)?;
                begin = Some((mode.to_string(), workload, procs));
            }
            "commit" => {
                commits += 1;
                let committer = get_str(&obj, "committer", lineno)?;
                let is_proc = committer
                    .strip_prefix('p')
                    .is_some_and(|rest| rest.parse::<u32>().is_ok());
                if !is_proc && committer != "dma" {
                    return Err(err(
                        lineno,
                        format!("bad committer \"{committer}\" (want \"pN\" or \"dma\")"),
                    ));
                }
                let truncation = get_str(&obj, "truncation", lineno)?;
                if !TRUNCATION_TAGS.contains(&truncation) {
                    return Err(err(
                        lineno,
                        format!("unknown truncation tag \"{truncation}\""),
                    ));
                }
                get_u64(&obj, "chunk", lineno)?;
                get_u64(&obj, "size", lineno)?;
                let slot = get_u64(&obj, "slot", lineno)?;
                if slot <= last_slot {
                    return Err(err(
                        lineno,
                        format!("commit slot not increasing: {slot} after {last_slot}"),
                    ));
                }
                last_slot = slot;
            }
            "chunk_start" => {
                chunk_starts += 1;
                get_u64(&obj, "core", lineno)?;
                get_u64(&obj, "chunk", lineno)?;
                get_u64(&obj, "target", lineno)?;
            }
            "squash" => {
                squashes += 1;
                get_u64(&obj, "core", lineno)?;
                get_u64(&obj, "chunks", lineno)?;
                get_u64(&obj, "insts", lineno)?;
            }
            "irq" => {
                interrupts += 1;
                get_u64(&obj, "core", lineno)?;
                get_u64(&obj, "vector", lineno)?;
            }
            "dma" => {
                get_u64(&obj, "words", lineno)?;
            }
            "segment_flush" => {
                segment_flushes += 1;
                get_u64(&obj, "segments", lineno)?;
                get_u64(&obj, "bytes", lineno)?;
                get_u64(&obj, "commits", lineno)?;
            }
            "end" => {
                let c = get_u64(&obj, "commits", lineno)?;
                let cycles = get_u64(&obj, "cycles", lineno)?;
                get_str(&obj, "mem_hash", lineno)?;
                if c != commits {
                    return Err(err(
                        lineno,
                        format!("\"end\" reports {c} commits but the trace has {commits}"),
                    ));
                }
                end = Some((c, cycles));
            }
            other => return Err(err(lineno, format!("unknown event \"{other}\""))),
        }
    }
    let Some((mode, workload, procs)) = begin else {
        return Err(err(lineno.max(1), "empty trace (no \"begin\" line)"));
    };
    let Some((_, cycles)) = end else {
        return Err(err(lineno, "trace has no \"end\" line (truncated run?)"));
    };
    Ok(TraceSummary {
        lines: lineno,
        mode,
        workload,
        procs,
        commits,
        chunk_starts,
        squashes,
        interrupts,
        segment_flushes,
        cycles,
    })
}

#[cfg(test)]
mod tests {
    // Test code may panic freely.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use delorean::Machine;
    use delorean_isa::workload;

    fn traced_bytes(mode: Mode) -> (Vec<u8>, delorean::Recording) {
        let m = Machine::builder().mode(mode).procs(2).budget(4_000).build();
        let mut tracer = JsonlTracer::new(Vec::new());
        let rec = m
            .session()
            .with_stage(&mut tracer)
            .record(workload::by_name("fft").unwrap(), 7);
        let (bytes, e) = tracer.finish();
        assert!(e.is_none());
        (bytes, rec)
    }

    #[test]
    fn traces_validate_for_every_mode() {
        for mode in Mode::all() {
            let (bytes, rec) = traced_bytes(mode);
            let summary = validate(&bytes[..]).unwrap();
            assert_eq!(summary.mode, mode_tag(mode));
            assert_eq!(summary.workload, "fft");
            assert_eq!(summary.commits, rec.stats.total_commits);
            assert_eq!(summary.cycles, rec.stats.cycles);
            assert!(summary.chunk_starts >= summary.commits - rec.stats.dma_commits);
        }
    }

    #[test]
    fn commit_lines_carry_the_span_fields() {
        let (bytes, _) = traced_bytes(Mode::OrderOnly);
        let text = String::from_utf8(bytes).unwrap();
        let commit = text
            .lines()
            .find(|l| l.contains("\"event\":\"commit\""))
            .expect("at least one commit line");
        for field in [
            "\"mode\":",
            "\"committer\":",
            "\"size\":",
            "\"truncation\":",
            "\"slot\":",
        ] {
            assert!(commit.contains(field), "{field} missing from {commit}");
        }
    }

    #[test]
    fn truncated_traces_are_rejected() {
        let (bytes, _) = traced_bytes(Mode::OrderOnly);
        let text = String::from_utf8(bytes).unwrap();
        let without_end: String = text
            .lines()
            .filter(|l| !l.contains("\"event\":\"end\""))
            .fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            });
        let e = validate(without_end.as_bytes()).unwrap_err();
        assert!(e.detail.contains("no \"end\""), "{e}");
    }

    #[test]
    fn tampered_commit_counts_are_rejected() {
        let (bytes, _) = traced_bytes(Mode::OrderOnly);
        let text = String::from_utf8(bytes).unwrap();
        let mut dropped = false;
        let tampered: String = text
            .lines()
            .filter(|l| {
                if !dropped && l.contains("\"event\":\"commit\"") {
                    dropped = true;
                    false
                } else {
                    true
                }
            })
            .fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            });
        let e = validate(tampered.as_bytes()).unwrap_err();
        assert!(e.detail.contains("commits"), "{e}");
    }

    #[test]
    fn garbage_is_rejected_with_a_line_number() {
        let e = validate(&b"{\"event\":\"begin\",\"mode\":\"order_only\",\"workload\":\"fft\",\"procs\":2,\"chunk_size\":2000,\"budget\":1,\"app_seed\":0}\nnot json\n"[..])
            .unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn json_parser_round_trips_escapes() {
        let v = parse_json("{\"a\":\"x\\n\\\"y\\\"\",\"b\":[1,2.5,true,null]}").unwrap();
        let Json::Obj(o) = v else {
            panic!("not an object")
        };
        assert_eq!(o.get("a").and_then(Json::as_str), Some("x\n\"y\""));
        let Some(Json::Arr(items)) = o.get("b") else {
            panic!("b not an array")
        };
        assert_eq!(items.len(), 4);
        assert_eq!(items[0].as_u64(), Some(1));
    }
}
