//! Explores the speed-vs-log-size trade-off across the three DeLorean
//! execution modes (Table 2 of the paper), including PI-log
//! stratification, on one workload.
//!
//! ```sh
//! cargo run --release -p delorean --example mode_explorer [workload]
//! ```

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::{Machine, Mode};
use delorean_isa::workload;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "fft".to_string());
    let w = workload::by_name(&name).unwrap_or_else(|| {
        eprintln!(
            "unknown workload {name}; available: {}",
            workload::catalog()
                .iter()
                .map(|w| w.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    });
    let budget = 40_000u64;
    println!("workload: {name}, 8 processors, {budget} instructions each\n");
    println!(
        "{:<12} {:>7} {:>9} {:>9} {:>11} {:>9} {:>8}",
        "mode", "chunks", "PI bits", "CS bits", "bits/p/kin", "cycles", "replay"
    );

    for mode in Mode::all() {
        let machine = Machine::builder()
            .mode(mode)
            .procs(8)
            .budget(budget)
            .build();
        let recording = machine.record(w, 99);
        let report = machine.replay(&recording).expect("shape");
        assert!(report.deterministic, "{:?}", report.divergence);
        let sizes = recording.memory_ordering_sizes();
        println!(
            "{:<12} {:>7} {:>9} {:>9} {:>11.3} {:>9} {:>7.0}%",
            mode.to_string(),
            recording.logs.pi.len() + recording.logs.cs.iter().map(|l| l.len()).sum::<usize>(),
            sizes.pi.raw_bits,
            sizes.cs.raw_bits,
            recording.compressed_bits_per_proc_per_kiloinst(),
            recording.stats.cycles,
            recording.stats.cycles as f64 / report.stats.cycles as f64 * 100.0,
        );
    }

    // Stratification (Section 4.3) applied post hoc to an OrderOnly
    // recording.
    let machine = Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(8)
        .budget(budget)
        .build();
    let recording = machine.record(w, 99);
    let plain = recording.logs.pi.measure().raw_bits;
    println!("\nstratifying the OrderOnly PI log ({} plain bits):", plain);
    for max in [1u32, 3, 7] {
        let strat = recording.stratified_pi(max);
        let report = machine
            .replay_stratified(&recording, max, 4242)
            .expect("shape");
        assert!(report.deterministic);
        println!(
            "  {max} chunk(s)/proc/stratum: {:>5} strata, {:>6} bits ({:>3.0}% of plain), replay ok",
            strat.len(),
            strat.measure().raw_bits,
            strat.measure().raw_bits as f64 / plain as f64 * 100.0,
        );
    }
    println!(
        "\nestimated PicoLog log volume at 5 GHz, IPC 1: {:.2} GB/day (paper estimates ~20)",
        Machine::builder()
            .mode(Mode::PicoLog)
            .procs(8)
            .budget(budget)
            .build()
            .record(w, 99)
            .gigabytes_per_day(5.0, 1.0)
    );
}
