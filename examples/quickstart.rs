//! Quickstart: record a multithreaded execution, replay it under
//! different machine timing, and verify the replay is bit-exact.
//!
//! ```sh
//! cargo run --release -p delorean --example quickstart
//! ```

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::{Machine, Mode};
use delorean_isa::workload;

fn main() {
    // An 8-processor DeLorean machine in OrderOnly mode: deterministic
    // chunking, recorded commit interleaving (the paper's preferred
    // configuration: 2,000-instruction chunks).
    let machine = Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(8)
        .budget(50_000) // retired instructions per processor
        .build();

    // Record one execution of a barnes-like SPLASH-2 workload.
    let workload = workload::by_name("barnes").expect("catalog workload");
    let recording = machine.record(workload, 2026);

    let sizes = recording.memory_ordering_sizes();
    println!(
        "recorded {} instructions on {} processors",
        recording.total_instructions(),
        8
    );
    println!(
        "  PI log: {} commits, {} bits ({} compressed)",
        recording.logs.pi.len(),
        sizes.pi.raw_bits,
        sizes.pi.compressed_bits
    );
    println!(
        "  CS log: {} non-deterministic truncations, {} bits",
        recording.logs.cs.iter().map(|l| l.len()).sum::<usize>(),
        sizes.cs.raw_bits
    );
    println!(
        "  memory-ordering log: {:.2} bits/processor/kilo-instruction",
        recording.compressed_bits_per_proc_per_kiloinst()
    );
    println!(
        "  squashes during recording: {} (chunked execution cost)",
        recording.stats.squashes
    );

    // Replay on a machine with *different* timing: perturbed commit
    // latencies, flipped cache hits, no parallel commit. Determinism
    // must hold anyway.
    let report = machine.replay(&recording).expect("machine shape matches");
    println!();
    println!("replay deterministic: {}", report.deterministic);
    println!(
        "  replay took {} cycles vs {} recorded ({:.0}% speed)",
        report.stats.cycles,
        recording.stats.cycles,
        recording.stats.cycles as f64 / report.stats.cycles as f64 * 100.0
    );
    assert!(
        report.deterministic,
        "replay diverged: {:?}",
        report.divergence
    );
    println!(
        "final memory hash: {:#018x} (identical in both runs)",
        recording.digest().mem_hash
    );
}
