//! Full-system replay: interrupts, uncached I/O and DMA captured in the
//! input logs and fed back during replay (Sections 3.3 and 4.2 of the
//! paper).
//!
//! ```sh
//! cargo run --release -p delorean --example io_replay
//! ```

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::{Machine, Mode};
use delorean_chunk::DeviceConfig;
use delorean_isa::workload;

fn main() {
    // A commercial workload with aggressive device activity: frequent
    // timer/device-RNG reads (uncached loads), interrupts and DMA.
    let machine = Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(4)
        .budget(40_000)
        .devices(DeviceConfig {
            irq_period: 15_000,
            dma_period: 25_000,
            dma_words: 48,
        })
        .build();
    let w = workload::by_name("sweb2005").expect("catalog workload");
    let recording = machine.record(w, 314);

    println!("full-system recording of sweb2005 on 4 processors:");
    println!("  interrupts delivered : {}", recording.stats.interrupts);
    println!("  DMA transfers        : {}", recording.stats.dma_commits);
    println!(
        "  I/O load values      : {}",
        recording.logs.io.iter().map(|l| l.len()).sum::<usize>()
    );
    println!(
        "  uncached truncations : {}",
        recording.stats.uncached_truncations
    );
    for (p, log) in recording.logs.interrupts.iter().enumerate() {
        if let Some(first) = log.entries().first() {
            println!(
                "  first interrupt on P{p}: vector {} at chunk {}",
                first.vector, first.chunk_index
            );
        }
    }

    // During replay no device fires on its own: every interrupt is
    // injected at the logged chunk boundary, every I/O load returns the
    // logged value and every DMA transfer is applied at its PI-log
    // position.
    let report = machine.replay(&recording).expect("shape");
    println!();
    println!("replay deterministic : {}", report.deterministic);
    println!("  interrupts re-injected: {}", report.stats.interrupts);
    println!("  DMA re-applied        : {}", report.stats.dma_commits);
    assert!(report.deterministic, "{:?}", report.divergence);
    assert_eq!(report.stats.interrupts, recording.stats.interrupts);
    assert_eq!(report.stats.dma_commits, recording.stats.dma_commits);
    println!("\nthe timer values, interrupt arrival points and DMA payloads that");
    println!("steered the recorded execution steered the replay identically.");
}
