//! Interval recording over system checkpoints: the paper's `I(n,m)`
//! story. Long recording periods are split into intervals, each
//! starting at a checkpoint (ReVive/SafetyNet in the paper) and each
//! independently, deterministically replayable — so a "20 GB per day"
//! log is really a chain of small, individually replayable pieces.
//!
//! ```sh
//! cargo run --release -p delorean --example interval_recording
//! ```

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::{Machine, Mode};
use delorean_isa::workload;

fn main() {
    let machine = Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(4)
        .budget(20_000)
        .build();
    let w = workload::by_name("cholesky").expect("catalog workload");

    // First interval: from the initial state.
    let first = machine.record(w, 99);
    println!(
        "interval 1: {} commits, {} insts/proc, memory {:#018x}",
        first.stats.total_commits,
        first.digest().retired[0],
        first.digest().mem_hash
    );

    // Take a system checkpoint at the end of the interval...
    let ck1 = first
        .checkpoint_at(first.stats.total_commits)
        .expect("checkpoint");
    println!(
        "checkpoint at GCC {}: id {:#018x}, {} chunks committed so far",
        ck1.gcc,
        ck1.id(),
        ck1.state.chunks_done.iter().sum::<u64>()
    );

    // ...and record the next interval from it (new machine timing, new
    // nondeterminism — a genuinely fresh recording).
    let second = machine
        .record_interval(&ck1, 20_000)
        .expect("compatible shape");
    println!(
        "interval 2: {} commits, runs to {} insts/proc",
        second.stats.total_commits,
        second.digest().retired[0]
    );

    // A third interval, chained from the second.
    let ck2 = second
        .checkpoint_at(second.stats.total_commits)
        .expect("checkpoint");
    let third = machine
        .record_interval(&ck2, 20_000)
        .expect("compatible shape");
    println!(
        "interval 3: {} commits, runs to {} insts/proc",
        third.stats.total_commits,
        third.digest().retired[0]
    );

    // Every interval replays deterministically on its own: to debug
    // something that happened late in a long run, only the covering
    // interval's checkpoint and logs are needed.
    println!();
    for (i, rec) in [&first, &second, &third].into_iter().enumerate() {
        let report = machine.replay(rec).expect("shape");
        println!(
            "replay of interval {}: deterministic = {} ({} cycles)",
            i + 1,
            report.deterministic,
            report.stats.cycles
        );
        assert!(report.deterministic, "{:?}", report.divergence);
    }
    println!();
    println!(
        "total recorded work: {} instructions across 3 independently replayable intervals",
        third.digest().retired.iter().sum::<u64>()
    );
}
