//! The paper's motivating use case: a concurrency bug that manifests
//! only under one timing is captured once, then re-examined across many
//! deterministic replays.
//!
//! Different *recording-side* timing seeds give executions whose racing
//! critical sections interleave differently, so the final shared state
//! differs run to run — the classic heisenbug setup. Once a recording
//! exists, every replay reproduces exactly the captured interleaving,
//! no matter how the replay machine behaves.
//!
//! ```sh
//! cargo run --release -p delorean --example race_debugging
//! ```

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::{Machine, Mode};
use delorean_isa::workload;

fn main() {
    let workload = workload::by_name("raytrace").expect("catalog workload");

    // The same program recorded under three different machine timings:
    // the interleaving (and therefore the outcome) differs.
    println!("recording the same program under three machine timings:");
    let mut digests = Vec::new();
    for timing_seed in [11u64, 22, 33] {
        let machine = Machine::builder()
            .mode(Mode::OrderOnly)
            .procs(8)
            .budget(30_000)
            .timing_seed(timing_seed)
            .build();
        let recording = machine.record(workload, 7);
        println!(
            "  timing seed {timing_seed}: final memory {:#018x}, {} squashes, {} commits",
            recording.digest().mem_hash,
            recording.stats.squashes,
            recording.logs.pi.len()
        );
        digests.push((machine, recording));
    }
    let unique: std::collections::HashSet<u64> =
        digests.iter().map(|(_, r)| r.digest().mem_hash).collect();
    println!(
        "  distinct outcomes: {} of 3 — the interleaving matters\n",
        unique.len()
    );

    // Pick the first recording as "the buggy run" and replay it five
    // times under five different replay-machine timings: every replay
    // reproduces the captured interleaving exactly.
    let (machine, buggy_run) = &digests[0];
    println!("replaying the captured run under five different replay timings:");
    for replay_seed in [1000u64, 2000, 3000, 4000, 5000] {
        let report = machine
            .replay_with_seed(buggy_run, replay_seed)
            .expect("shape");
        println!(
            "  replay seed {replay_seed}: deterministic = {}, memory {:#018x}",
            report.deterministic, report.stats.digest.mem_hash
        );
        assert!(report.deterministic, "{:?}", report.divergence);
        assert_eq!(report.stats.digest.mem_hash, buggy_run.digest().mem_hash);
    }
    println!("\nevery replay reproduced the captured interleaving bit-exactly —");
    println!("the bug can now be examined as many times as debugging requires.");
}
