//! Watchpoint debugging over a recording: find *which chunk* wrote a
//! shared location — the paper's "illuminating what brought the
//! execution to a buggy state" workflow, built on the software replayer
//! (`delorean::inspect`).
//!
//! ```sh
//! cargo run --release -p delorean --example watchpoint
//! ```

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::inspect::ReplayInspector;
use delorean::{Machine, Mode};
use delorean_chunk::Committer;
use delorean_isa::layout::AddressMap;
use delorean_isa::workload;

fn main() {
    // Capture a contended run once.
    let machine = Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(8)
        .budget(30_000)
        .build();
    let w = workload::by_name("raytrace").expect("catalog workload");
    let recording = machine.record(w, 1234);
    let map = AddressMap::new(8);

    // Suppose debugging shows the word guarded by the contended lock
    // ends up with a suspicious value. Who wrote it, and when?
    let suspect = map.lock_addr(0) + 1;
    println!(
        "final value of suspect word {:#x}: {:#x}",
        suspect,
        final_value(&recording, suspect)
    );
    println!("replaying with a watchpoint on it...\n");

    let mut inspector = ReplayInspector::new(&recording);
    inspector.watch(suspect);
    let mut writers = Vec::new();
    while let Some(ev) = inspector.step().expect("logs are consistent") {
        for hit in &ev.watch_hits {
            println!(
                "GCC {:>4}: {} chunk {:>3} changed {:#x}: {:#018x} -> {:#018x}",
                ev.gcc,
                match ev.committer {
                    Committer::Proc(p) => format!("P{p}"),
                    Committer::Dma => "DMA".to_string(),
                },
                ev.chunk_index,
                hit.addr,
                hit.old,
                hit.new
            );
            writers.push((ev.gcc, ev.committer));
        }
    }
    let report_ok = {
        let mut check = ReplayInspector::new(&recording);
        check.run_to_end().expect("consistent").matches_recording
    };
    println!("\n{} commits wrote the watched word.", writers.len());
    if let Some(&(gcc, who)) = writers.last() {
        println!("last writer: {who:?} at global commit {gcc} — that's the chunk to inspect.");
    }
    println!("software replay matches the recorded digest: {report_ok}");
    assert!(report_ok);
}

fn final_value(recording: &delorean::Recording, addr: u64) -> u64 {
    let mut ins = ReplayInspector::new(recording);
    ins.run_to_end().expect("consistent");
    ins.memory(addr)
}
