//! End-to-end determinism: a replay with *different machine timing*
//! must reproduce the recorded execution exactly — same final memory,
//! same per-processor instruction streams, same chunk counts. This is
//! the paper's central claim (Appendix B).

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::{Machine, Mode};
use delorean_isa::workload;

fn machine(mode: Mode, procs: u32, budget: u64) -> Machine {
    Machine::builder()
        .mode(mode)
        .procs(procs)
        .budget(budget)
        .build()
}

fn assert_replays(mode: Mode, app: &str, procs: u32, budget: u64, seed: u64) {
    let m = machine(mode, procs, budget);
    let recording = m.record(workload::by_name(app).unwrap(), seed);
    let report = m.replay(&recording).expect("machine shapes match");
    assert!(
        report.deterministic,
        "{mode} replay of {app} diverged: {:?}",
        report.divergence
    );
}

#[test]
fn order_only_replays_all_splash_apps() {
    for w in workload::splash2() {
        assert_replays(Mode::OrderOnly, w.name, 4, 10_000, 42);
    }
}

#[test]
fn order_only_replays_commercial_apps_with_full_system_activity() {
    for w in workload::commercial() {
        assert_replays(Mode::OrderOnly, w.name, 4, 12_000, 7);
    }
}

#[test]
fn order_size_replays_with_variable_chunking() {
    for app in ["barnes", "radix", "sjbb2k"] {
        assert_replays(Mode::OrderSize, app, 4, 10_000, 3);
    }
}

#[test]
fn picolog_replays_without_a_pi_log() {
    for app in ["raytrace", "fft", "sweb2005"] {
        assert_replays(Mode::PicoLog, app, 4, 10_000, 11);
    }
}

#[test]
fn eight_processor_contended_replay() {
    assert_replays(Mode::OrderOnly, "radix", 8, 8_000, 5);
    assert_replays(Mode::PicoLog, "raytrace", 8, 8_000, 5);
}

#[test]
fn replay_is_deterministic_across_many_timing_seeds() {
    // Five perturbed replays (the paper's methodology) must all match.
    let m = machine(Mode::OrderOnly, 4, 8_000);
    let recording = m.record(workload::by_name("cholesky").unwrap(), 99);
    for seed in [1u64, 22, 333, 4444, 55555] {
        let report = m.replay_with_seed(&recording, seed).unwrap();
        assert!(report.deterministic, "seed {seed}: {:?}", report.divergence);
    }
}

#[test]
fn stratified_replay_reproduces_the_execution() {
    let m = machine(Mode::OrderOnly, 4, 8_000);
    let recording = m.record(workload::by_name("fmm").unwrap(), 31);
    for max in [1u32, 3, 7] {
        let report = m.replay_stratified(&recording, max, 777).unwrap();
        assert!(
            report.deterministic,
            "stratified({max}) diverged: {:?}",
            report.divergence
        );
    }
}

#[test]
fn overflow_truncations_are_reproduced_via_cs_log() {
    // Crank overflow noise so the CS log is exercised heavily.
    let m = Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(4)
        .budget(10_000)
        .overflow_noise(0.01)
        .build();
    let recording = m.record(workload::by_name("ocean").unwrap(), 13);
    assert!(
        recording.stats.overflow_truncations > 0,
        "test needs overflow truncations to be meaningful"
    );
    assert!(recording.logs.cs.iter().any(|l| !l.is_empty()));
    let report = m.replay(&recording).unwrap();
    assert!(report.deterministic, "{:?}", report.divergence);
}

#[test]
fn collision_shrinking_is_reproduced_via_cs_log() {
    let m = Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(8)
        .chunk_size(800)
        .budget(10_000)
        .build();
    let recording = m.record(workload::by_name("raytrace").unwrap(), 17);
    let report = m.replay(&recording).unwrap();
    assert!(report.deterministic, "{:?}", report.divergence);
}

#[test]
fn recordings_are_reproducible_themselves() {
    // Same machine, same seeds: identical recording (sanity for
    // everything else).
    let m = machine(Mode::OrderOnly, 4, 6_000);
    let w = workload::by_name("lu").unwrap();
    let a = m.record(w, 1);
    let b = m.record(w, 1);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.logs.pi, b.logs.pi);
}

#[test]
fn different_app_seeds_produce_different_executions() {
    let m = machine(Mode::OrderOnly, 2, 4_000);
    let w = workload::by_name("barnes").unwrap();
    let a = m.record(w, 1);
    let b = m.record(w, 2);
    assert_ne!(a.digest().mem_hash, b.digest().mem_hash);
}

#[test]
fn tiny_chunks_still_replay() {
    // Chunk boundaries inside critical sections and handlers.
    let m = Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(2)
        .chunk_size(37)
        .budget(5_000)
        .build();
    let recording = m.record(workload::by_name("sjbb2k").unwrap(), 23);
    let report = m.replay(&recording).unwrap();
    assert!(report.deterministic, "{:?}", report.divergence);
}

#[test]
fn single_processor_recordings_replay() {
    for mode in Mode::all() {
        let m = machine(mode, 1, 5_000);
        let recording = m.record(workload::by_name("water-sp").unwrap(), 2);
        let report = m.replay(&recording).unwrap();
        assert!(report.deterministic, "{mode}: {:?}", report.divergence);
    }
}
