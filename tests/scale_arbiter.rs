//! Scaling the machine: sharded commit arbitration and large core
//! counts.
//!
//! The sharded arbiter changes *which* commit the arbiter grants next
//! (per-shard sequences merged by a rotating cursor), but the recorded
//! total order is still a single serialized stream — so a sharded
//! recording must replay deterministically through the standard global
//! replay path, and its `.dlrn` stream must carry the topology so
//! consumers know what produced it.

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::{serialize, ArbiterConfig, FileSink, FileSource, LogSource, Machine, Mode};
use delorean_isa::workload;

fn machine(procs: u32, arbiter: ArbiterConfig, budget: u64) -> Machine {
    Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(procs)
        .budget(budget)
        .arbiter(arbiter)
        .build()
}

#[test]
fn sharded_recording_replays_deterministically() {
    let w = workload::by_name("fft").unwrap();
    for shards in [1u32, 2, 4] {
        let m = machine(8, ArbiterConfig::Sharded { shards }, 4_000);
        let rec = m.record(w, 7);
        assert_eq!(rec.arbiter, ArbiterConfig::Sharded { shards });
        let report = m.replay(&rec).unwrap();
        assert!(
            report.deterministic,
            "sharded:{shards}: {:?}",
            report.divergence
        );
    }
}

#[test]
fn sharded_and_global_recordings_differ_only_in_commit_order() {
    // Both backends drive the same machine to completion: identical
    // retired counts and final memory are not required to match commit
    // orders, but every processor must retire its full budget.
    let w = workload::by_name("lu").unwrap();
    let global = machine(8, ArbiterConfig::Global, 3_000).record(w, 5);
    let sharded = machine(8, ArbiterConfig::Sharded { shards: 4 }, 3_000).record(w, 5);
    assert_eq!(global.stats.digest.retired, vec![3_000; 8]);
    assert_eq!(sharded.stats.digest.retired, vec![3_000; 8]);
    assert_eq!(
        global.stats.total_commits, sharded.stats.total_commits,
        "both backends serialize the same chunk population"
    );
}

#[test]
fn the_machine_scales_to_256_cores_under_both_backends() {
    let w = workload::by_name("fft").unwrap();
    for arbiter in [ArbiterConfig::Global, ArbiterConfig::Sharded { shards: 8 }] {
        let m = machine(256, arbiter, 800);
        let rec = m.record(w, 11);
        assert_eq!(rec.n_procs, 256);
        assert_eq!(rec.stats.digest.retired.len(), 256);
        assert!(
            rec.stats.digest.retired.iter().all(|&r| r == 800),
            "{arbiter}: every core must retire its budget"
        );
        let report = m.replay(&rec).unwrap();
        assert!(report.deterministic, "{arbiter}: {:?}", report.divergence);
    }
}

#[test]
fn dlrn_header_carries_the_arbiter_topology() {
    let w = workload::by_name("fft").unwrap();
    let m = machine(4, ArbiterConfig::Sharded { shards: 2 }, 2_000);
    let mut sink = FileSink::new(Vec::new());
    m.record_to(w, 9, &mut sink);
    let bytes = sink.into_inner().unwrap();

    // The streaming source and the whole-buffer decoder both surface
    // the recorded topology.
    let source = FileSource::open(&bytes[..]).unwrap();
    assert_eq!(
        source.meta().unwrap().arbiter,
        ArbiterConfig::Sharded { shards: 2 }
    );
    let rec = serialize::from_bytes(&bytes).unwrap();
    assert_eq!(rec.arbiter, ArbiterConfig::Sharded { shards: 2 });

    // And the stream replays through the standard digest check.
    let report = m
        .replay_from(FileSource::open(&bytes[..]).unwrap())
        .unwrap();
    assert!(report.deterministic, "{:?}", report.divergence);

    // A global recording writes no topology block at all, so its
    // header bytes stay legacy-compatible.
    let mg = machine(4, ArbiterConfig::Global, 2_000);
    let mut sink = FileSink::new(Vec::new());
    mg.record_to(w, 9, &mut sink);
    let global_bytes = sink.into_inner().unwrap();
    let rec = serialize::from_bytes(&global_bytes).unwrap();
    assert_eq!(rec.arbiter, ArbiterConfig::Global);
}

#[test]
fn shard_assignment_follows_the_recorded_topology() {
    // Round-trip a sharded stream and check every stamped commit fits
    // the declared topology (proc p -> shard p % K, DMA -> shard 0).
    let w = workload::by_name("sweb2005").unwrap();
    let m = machine(8, ArbiterConfig::Sharded { shards: 4 }, 2_000);
    let mut sink = FileSink::new(Vec::new());
    m.record_to(w, 3, &mut sink);
    let bytes = sink.into_inner().unwrap();
    let mut walker = delorean::SegmentWalker::open(&bytes[..]).unwrap();
    let mut stamped = 0u64;
    loop {
        match walker.next_segment().unwrap() {
            delorean::WalkedSegment::Events(seg) => {
                for ev in &seg.events {
                    let shard = ev.shard.expect("sharded recordings stamp every commit");
                    assert!(shard < 4);
                    match ev.committer {
                        delorean_chunk::Committer::Proc(p) => assert_eq!(shard, p % 4),
                        delorean_chunk::Committer::Dma => assert_eq!(shard, 0),
                    }
                    stamped += 1;
                }
            }
            delorean::WalkedSegment::Trailer(_) => {}
            delorean::WalkedSegment::End => break,
        }
    }
    assert!(stamped > 0);
}
