//! End-to-end tests for the streaming record/replay pipeline: the
//! `FileSink`/`FileSource` path must be byte- and digest-identical to
//! the in-memory `Recording` path, and its peak buffering must be
//! bounded by the flush granularity, not the run length.

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::{serialize, FileSink, FileSource, Machine, Mode};
use delorean_isa::workload;
use proptest::prelude::*;

const MODES: [Mode; 3] = [Mode::OrderSize, Mode::OrderOnly, Mode::PicoLog];

fn machine(mode: Mode, procs: u32, budget: u64) -> Machine {
    Machine::builder()
        .mode(mode)
        .procs(procs)
        .budget(budget)
        .build()
}

/// Records `workload` twice — once into an in-memory `Recording`, once
/// streamed through a `FileSink` — and returns both serializations.
fn record_both(m: &Machine, name: &str, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let w = workload::by_name(name).expect("catalog workload");
    let recording = m.record(w, seed);
    let in_memory = serialize::to_bytes(&recording);
    let mut sink = FileSink::new(Vec::new());
    m.record_to(w, seed, &mut sink);
    let streamed = sink.into_inner().expect("writing to a Vec cannot fail");
    (in_memory, streamed)
}

/// Acceptance: for every catalog workload and every mode, recording
/// through a `FileSink` and replaying from a `FileSource` yields the
/// same state digest as the in-memory record/replay path.
#[test]
fn catalog_streams_replay_to_identical_digests() {
    for w in workload::catalog() {
        for mode in MODES {
            let m = machine(mode, 4, 12_000);
            let (in_memory, streamed) = record_both(&m, w.name, 2026);
            assert_eq!(
                in_memory, streamed,
                "{} / {mode}: FileSink bytes differ from serialized Recording",
                w.name
            );

            let recording = serialize::from_bytes(&in_memory).expect("round trip");
            let mem_report = m.replay(&recording).expect("in-memory replay");
            let source = FileSource::open(&streamed[..]).expect("open stream");
            let stream_report = m.replay_from(source).expect("streamed replay");

            assert!(
                mem_report.deterministic,
                "{} / {mode}: in-memory replay diverged",
                w.name
            );
            assert!(
                stream_report.deterministic,
                "{} / {mode}: streamed replay diverged",
                w.name
            );
            assert_eq!(
                stream_report.stats.digest, mem_report.stats.digest,
                "{} / {mode}: streamed replay digest differs",
                w.name
            );
            assert_eq!(stream_report.stats.digest, recording.stats.digest);
        }
    }
}

/// Acceptance: peak sink buffering tracks the flush granularity.
/// Quadrupling the run length must not quadruple the peak; it stays at
/// the size of one flush batch.
#[test]
fn peak_buffering_is_bounded_by_flush_size_not_run_length() {
    let w = workload::by_name("ocean").expect("catalog workload");
    let mut peaks = Vec::new();
    let mut commits = Vec::new();
    for budget in [10_000u64, 40_000] {
        let m = machine(Mode::OrderOnly, 4, budget);
        let mut sink = FileSink::with_flush_every(Vec::new(), 8);
        let stats = m.record_to(w, 7, &mut sink);
        commits.push(stats.total_commits);
        peaks.push(sink.peak_buffered_bytes());
    }
    assert!(
        commits[1] >= 3 * commits[0],
        "long run should commit ~4x as many chunks ({commits:?})"
    );
    // The peak is one 8-event batch in both runs; allow 2x slack for
    // variation in per-event footprint sizes.
    assert!(
        peaks[1] <= 2 * peaks[0].max(1),
        "peak buffering scaled with run length: {peaks:?}"
    );
}

/// A `FileSource` answers replay queries without materializing the
/// whole log: after the first grant query it holds at most a few
/// segments' worth of entries, not the full run.
#[test]
fn file_source_buffers_a_bounded_window() {
    let w = workload::by_name("radix").expect("catalog workload");
    let m = machine(Mode::OrderOnly, 4, 40_000);
    let mut sink = FileSink::with_flush_every(Vec::new(), 8);
    let stats = m.record_to(w, 7, &mut sink);
    let bytes = sink.into_inner().expect("writing to a Vec cannot fail");

    use delorean::LogSource;
    let mut source = FileSource::open(&bytes[..]).expect("open stream");
    source.pi_peek();
    let buffered = source.buffered_entries();
    assert!(
        (buffered as u64) < stats.total_commits,
        "first query pulled the whole log: {buffered} entries buffered of {}",
        stats.total_commits
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Satellite: across random workloads, shapes and modes, the
    /// MemorySink and FileSink paths produce byte-identical `.dlrn`
    /// output and identical replay digests.
    #[test]
    fn sink_paths_agree(
        widx in 0usize..13,
        mode_sel in 0u8..3,
        procs in 2u32..6,
        budget in 6_000u64..16_000,
        seed in 0u64..1_000_000,
    ) {
        let w = workload::catalog()[widx];
        let m = machine(MODES[mode_sel as usize], procs, budget);
        let (in_memory, streamed) = record_both(&m, w.name, seed);
        prop_assert_eq!(&in_memory, &streamed);

        let recording = serialize::from_bytes(&in_memory).expect("round trip");
        let mem_report = m.replay(&recording).expect("in-memory replay");
        let source = FileSource::open(&streamed[..]).expect("open stream");
        let stream_report = m.replay_from(source).expect("streamed replay");
        prop_assert!(mem_report.deterministic);
        prop_assert!(stream_report.deterministic);
        prop_assert_eq!(stream_report.stats.digest, mem_report.stats.digest);
    }
}
