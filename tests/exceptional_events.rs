//! Exceptional-event handling end-to-end (Table 4 of the paper):
//! interrupts, I/O, DMA, deterministic and non-deterministic chunk
//! truncation.

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::{Machine, Mode};
use delorean_chunk::DeviceConfig;
use delorean_isa::workload;

fn commercial_machine(mode: Mode) -> Machine {
    Machine::builder()
        .mode(mode)
        .procs(4)
        .budget(15_000)
        .devices(DeviceConfig {
            irq_period: 20_000,
            dma_period: 30_000,
            dma_words: 32,
        })
        .build()
}

#[test]
fn interrupts_are_recorded_and_replayed() {
    let m = commercial_machine(Mode::OrderOnly);
    let recording = m.record(workload::by_name("sjbb2k").unwrap(), 4);
    assert!(
        recording.stats.interrupts > 0,
        "device config must generate interrupts"
    );
    let logged: usize = recording.logs.interrupts.iter().map(|l| l.len()).sum();
    assert_eq!(logged as u64, recording.stats.interrupts);
    let report = m.replay(&recording).unwrap();
    assert!(report.deterministic, "{:?}", report.divergence);
    assert_eq!(report.stats.interrupts, recording.stats.interrupts);
}

#[test]
fn io_values_are_recorded_and_fed_back() {
    let m = commercial_machine(Mode::OrderOnly);
    let recording = m.record(workload::by_name("sweb2005").unwrap(), 9);
    let io_values: usize = recording.logs.io.iter().map(|l| l.len()).sum();
    assert!(io_values > 0, "commercial workload must perform I/O loads");
    let report = m.replay(&recording).unwrap();
    assert!(report.deterministic, "{:?}", report.divergence);
}

#[test]
fn dma_transfers_are_recorded_and_reinjected() {
    let m = commercial_machine(Mode::OrderOnly);
    let recording = m.record(workload::by_name("sjbb2k").unwrap(), 21);
    assert!(
        recording.stats.dma_commits > 0,
        "device config must generate DMA"
    );
    assert_eq!(recording.logs.dma.len() as u64, recording.stats.dma_commits);
    // DMA entries appear in the PI log as the DMA pseudo-processor.
    let dma_pi = recording
        .logs
        .pi
        .iter()
        .filter(|c| *c == delorean_chunk::Committer::Dma)
        .count();
    assert_eq!(dma_pi as u64, recording.stats.dma_commits);
    let report = m.replay(&recording).unwrap();
    assert!(report.deterministic, "{:?}", report.divergence);
    assert_eq!(report.stats.dma_commits, recording.stats.dma_commits);
}

#[test]
fn picolog_records_dma_commit_slots() {
    let m = commercial_machine(Mode::PicoLog);
    let recording = m.record(workload::by_name("sjbb2k").unwrap(), 33);
    assert!(recording.stats.dma_commits > 0);
    assert!(recording.logs.pi.is_empty(), "PicoLog has no PI log");
    assert!(
        recording.logs.dma.slot(0).is_some(),
        "commit slots recorded instead"
    );
    let report = m.replay(&recording).unwrap();
    assert!(report.deterministic, "{:?}", report.divergence);
}

#[test]
fn uncached_accesses_truncate_deterministically_and_are_not_cs_logged() {
    // OrderOnly: uncached truncations must NOT appear in the CS log
    // (they reappear deterministically); only overflow/collision do.
    // I/O sites fire once per 32 loop iterations, so the run must span
    // enough iterations to reach them.
    let m = Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(2)
        .budget(90_000)
        .overflow_noise(0.0)
        .devices(DeviceConfig::none())
        .build();
    let recording = m.record(workload::by_name("sweb2005").unwrap(), 3);
    assert!(recording.stats.uncached_truncations > 0);
    // Uncached truncations never reach the CS log; only the
    // non-deterministic ones (genuine cache overflows can still occur
    // with zero noise) do.
    let cs_entries: usize = recording.logs.cs.iter().map(|l| l.len()).sum();
    assert_eq!(
        cs_entries as u64,
        recording.stats.overflow_truncations + recording.stats.collision_truncations,
        "CS log must contain exactly the non-deterministic truncations"
    );
    let report = m.replay(&recording).unwrap();
    assert!(report.deterministic, "{:?}", report.divergence);
}

#[test]
fn interrupt_heavy_run_replays_in_picolog() {
    let m = Machine::builder()
        .mode(Mode::PicoLog)
        .procs(4)
        .budget(12_000)
        .devices(DeviceConfig {
            irq_period: 8_000,
            dma_period: 0,
            dma_words: 0,
        })
        .build();
    let recording = m.record(workload::by_name("barnes").unwrap(), 8);
    assert!(recording.stats.interrupts > 2);
    let report = m.replay(&recording).unwrap();
    assert!(report.deterministic, "{:?}", report.divergence);
}

#[test]
fn order_size_logs_every_chunk_size() {
    let m = Machine::builder()
        .mode(Mode::OrderSize)
        .procs(2)
        .budget(8_000)
        .build();
    let recording = m.record(workload::by_name("fft").unwrap(), 6);
    // Every committed chunk has a CS entry in Order&Size.
    let total_chunks: u64 = recording.digest().committed_chunks.iter().sum();
    let cs_entries: usize = recording.logs.cs.iter().map(|l| l.len()).sum();
    assert_eq!(cs_entries as u64, total_chunks);
    // And variable chunking truly produced sub-maximum chunks.
    assert!(recording.stats.avg_chunk_size < recording.chunk_size as f64);
}

#[test]
fn high_overflow_noise_stresses_replay_splits() {
    // Replay runs its own overflow checks; spurious replay overflows
    // must not break determinism (they become two-piece commits).
    let m = Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(4)
        .budget(10_000)
        .overflow_noise(0.02)
        .build();
    let recording = m.record(workload::by_name("radix").unwrap(), 19);
    let report = m.replay(&recording).unwrap();
    assert!(report.deterministic, "{:?}", report.divergence);
}
