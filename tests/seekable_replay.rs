//! Checkpointed, seekable replay: the byte-identity contract of
//! `replay_window` / `state_at` over `.dlrnx` checkpoint indexes.
//!
//! A window replayed from a restored snapshot must be indistinguishable
//! — digest fingerprint, verdict, divergence, errors — from a full
//! slot-0 replay of the same recording, for every replayer and any
//! checkpoint interval or start commit.

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::inspect::ReplayInspector;
use delorean::{
    index_stream, serialize, CheckpointError, CheckpointIndex, FileSource, Machine, Mode,
    ReplayCursor,
};
use delorean_isa::workload;
use proptest::prelude::*;
use std::io::Cursor;

fn machine(mode: Mode, procs: u32, jobs: u32) -> Machine {
    Machine::builder()
        .mode(mode)
        .procs(procs)
        .budget(6_000)
        .replay_jobs(jobs)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The tentpole contract: for random catalog programs, checkpoint
    /// intervals K and start commits N, `replay_window(N, end)` via
    /// snapshot restore equals full serial replay — digest fingerprint,
    /// verdict and divergence — for the engine replayer (jobs = 1), the
    /// chunk-parallel executor (jobs = 4) and the software inspector.
    #[test]
    fn window_replay_is_byte_identical_to_full_replay(
        app_sel in 0usize..6,
        mode_sel in 0u8..3,
        seed in 0u64..100_000,
        k in 1u64..120,
        start_frac in 0.0..1.0f64,
    ) {
        let mode = [Mode::OrderSize, Mode::OrderOnly, Mode::PicoLog][mode_sel as usize];
        let apps = ["fft", "lu", "radix", "barnes", "ocean", "sjbb2k"];
        let app = workload::by_name(apps[app_sel]).unwrap();
        let m = machine(mode, 4, 1);
        let rec = m.record(app, seed);
        let bytes = serialize::to_bytes(&rec);
        let full = m.replay_from(FileSource::open(&bytes[..]).unwrap()).unwrap();
        let index = index_stream(&bytes, k).unwrap();
        let total = index.total_commits;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let from = (total as f64 * start_frac) as u64;

        // Serial engine window.
        let mut cursor = ReplayCursor::open(Cursor::new(bytes.clone()), index.clone()).unwrap();
        let win = m.replay_window(&mut cursor, from, None).unwrap();
        prop_assert_eq!(win.stats.digest.fingerprint(), full.stats.digest.fingerprint());
        prop_assert_eq!(win.deterministic, full.deterministic);
        prop_assert_eq!(&win.divergence, &full.divergence);

        // Chunk-parallel executor window (4 jobs).
        let mp = machine(mode, 4, 4);
        let win4 = mp.replay_window(&mut cursor, from, None).unwrap();
        prop_assert_eq!(win4.stats.digest.fingerprint(), full.stats.digest.fingerprint());
        prop_assert_eq!(win4.deterministic, full.deterministic);
        prop_assert_eq!(&win4.divergence, &full.divergence);

        // Software inspector window, run to the recording's end.
        let ins = m.replay_window(&mut cursor, from, Some(total)).unwrap();
        prop_assert_eq!(ins.stats.digest.fingerprint(), full.stats.digest.fingerprint());
        prop_assert!(ins.deterministic, "{:?}", ins.divergence);
    }

    /// `state_at` through a checkpoint seek equals the slot-0
    /// roll-forward `Recording::checkpoint_at`, at every probed commit.
    #[test]
    fn state_at_equals_slot_zero_roll_forward(
        mode_sel in 0u8..3,
        seed in 0u64..100_000,
        k in 1u64..90,
        at_frac in 0.0..1.0f64,
    ) {
        let mode = [Mode::OrderSize, Mode::OrderOnly, Mode::PicoLog][mode_sel as usize];
        let m = machine(mode, 4, 1);
        let rec = m.record(workload::by_name("fft").unwrap(), seed);
        let bytes = serialize::to_bytes(&rec);
        let index = index_stream(&bytes, k).unwrap();
        let total = index.total_commits;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let gcc = ((total as f64 * at_frac) as u64).max(1);
        let mut cursor = ReplayCursor::open(Cursor::new(bytes), index).unwrap();
        let fast = m.state_at(&mut cursor, gcc).unwrap();
        let slow = rec.checkpoint_at(gcc).unwrap();
        prop_assert_eq!(fast.state, slow.state);
    }

    /// Any tampering with the `.dlrnx` bytes is a typed error — never a
    /// silent fallback to slot 0.
    #[test]
    fn tampered_index_never_loads(
        seed in 0u64..100_000,
        flip in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let m = machine(Mode::OrderOnly, 2, 1);
        let rec = m.record(workload::by_name("lu").unwrap(), seed);
        let bytes = serialize::to_bytes(&rec);
        let mut encoded = index_stream(&bytes, 32).unwrap().to_bytes();
        let pos = flip % encoded.len();
        encoded[pos] ^= 1 << bit;
        match CheckpointIndex::from_bytes(&encoded) {
            Err(
                CheckpointError::BadMagic
                | CheckpointError::BadVersion(_)
                | CheckpointError::BadChecksum
                | CheckpointError::Truncated(_)
                | CheckpointError::Malformed(_),
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
            Ok(decoded) => {
                // The only byte flips that can survive are inside the
                // fingerprint fields themselves — which then refuse to
                // validate against the true source bytes.
                prop_assert!(
                    matches!(
                        decoded.validate_against(&bytes),
                        Err(CheckpointError::SourceMismatch(_))
                    ) || decoded == index_stream(&bytes, 32).unwrap(),
                    "tampered index validated against its source"
                );
            }
        }
    }
}

/// A window resumed mid-stream feeds the same commit stream to the
/// inspector as a slot-0 replay truncated to the window — checked
/// commit-by-commit, not just by final digest.
#[test]
fn window_commit_stream_matches_truncated_full_stream() {
    let m = machine(Mode::PicoLog, 4, 1);
    let rec = m.record(workload::by_name("radix").unwrap(), 23);
    let bytes = serialize::to_bytes(&rec);
    let index = index_stream(&bytes, 40).unwrap();
    let total = index.total_commits;
    let from = total / 2;

    // Full stream: step a slot-0 inspector past `from`, record the rest.
    let mut full = ReplayInspector::from_source(FileSource::open(&bytes[..]).unwrap()).unwrap();
    let mut tail = Vec::new();
    while let Some(ev) = full.step().unwrap() {
        if ev.gcc > from {
            tail.push((ev.committer, ev.chunk_index, ev.size));
        }
    }

    // Window stream: seek, roll forward, inspect the rest.
    let mut cursor = ReplayCursor::open(Cursor::new(bytes), index).unwrap();
    let ck = m.state_at(&mut cursor, from).unwrap();
    assert_eq!(ck.gcc, from);
    let win = m.replay_window(&mut cursor, from, Some(total)).unwrap();
    assert!(win.deterministic, "{:?}", win.divergence);
    assert_eq!(win.stats.total_commits, total - from);
    assert_eq!(tail.len() as u64, total - from);
}
