//! The byte-identity guarantee of the chunk-parallel replay executor:
//! for *any* log stream — pristine, corrupted, truncated, or salvaged —
//! replaying at `jobs = N` produces exactly the outcome of replaying at
//! `jobs = 1`: the same digest, the same verdict, the same divergence
//! string, the same `ReplayError`. Speculation may only change
//! wall-clock time, never results.

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::recover::{salvage, RecoveringSource};
use delorean::{
    DependenceHints, FileSink, FileSource, LogSource, Machine, MemorySource, Mode,
    ParallelReplayOptions,
};
use delorean_isa::workload::{self, WorkloadKind, WorkloadSpec};
use proptest::prelude::*;

const MODES: [Mode; 3] = [Mode::OrderSize, Mode::OrderOnly, Mode::PicoLog];
const JOBS: [u32; 5] = [1, 2, 4, 8, 16];

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable fingerprint of a `StateDigest`, one value per replay.
fn digest_fingerprint(d: &delorean::StateDigest) -> u64 {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&d.mem_hash.to_le_bytes());
    for part in [&d.stream_hashes, &d.retired, &d.committed_chunks] {
        bytes.extend_from_slice(&(part.len() as u64).to_le_bytes());
        for v in part {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    fnv64(&bytes)
}

/// The *entire* observable outcome of a parallel replay, canonicalized
/// to a string so success and failure compare under one `==`: verdict,
/// divergence, digest, commit count on success; the full `ReplayError`
/// (Debug and Display) on failure.
fn outcome<S: LogSource>(m: &Machine, source: S, jobs: u32, depth: u32) -> String {
    let opts = ParallelReplayOptions {
        jobs,
        depth,
        hints: None,
    };
    match m.replay_parallel_with(source, &opts) {
        Ok((r, _)) => format!(
            "ok det={} div={:?} digest={:016x} commits={}",
            r.deterministic,
            r.divergence,
            digest_fingerprint(&r.stats.digest),
            r.stats.total_commits,
        ),
        Err(e) => format!("err {e:?} ({e})"),
    }
}

fn record_bytes(m: &Machine, w: &WorkloadSpec, seed: u64) -> Vec<u8> {
    let mut sink = FileSink::with_flush_every(Vec::new(), 4);
    m.record_to(w, seed, &mut sink);
    sink.into_inner().expect("writing to a Vec cannot fail")
}

/// Random but valid workload specs (the property-test catalog).
fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        0.2..0.5f64,                          // mem_frac
        0.1..0.6f64,                          // shared_frac
        0.1..0.7f64,                          // write_frac
        0.0..0.2f64,                          // hot_frac
        0.0..0.8f64,                          // cross_frac
        0.0..0.9f64,                          // irregular
        prop_oneof![Just(0u32), 200..800u32], // lock_every
        prop_oneof![Just(0u32), 2..6u32],     // barrier_every_iters
        prop_oneof![Just(0u32), 300..900u32], // io_every
    )
        .prop_map(
            |(mem, sh, wr, hot, cross, irr, lock, bar, io)| WorkloadSpec {
                name: "prop",
                kind: if io > 0 {
                    WorkloadKind::Commercial
                } else {
                    WorkloadKind::Splash
                },
                mem_frac: mem,
                shared_frac: sh,
                write_frac: wr,
                hot_frac: hot,
                hot_words: 32,
                shared_span: 4096,
                cross_frac: cross,
                private_span: 2048,
                irregular: irr,
                lock_every: lock,
                lock_count: 16,
                lock_skew: 0.3,
                crit_len: 9,
                barrier_every_iters: bar,
                io_every: io,
                sys_every: if io > 0 { io * 2 } else { 0 },
            },
        )
}

/// Acceptance: the full workload catalog, all three modes, replays
/// byte-identically at every job count in {1, 2, 4, 8, 16}, and every
/// one of those replays verifies against the recording's digest.
#[test]
fn golden_catalog_is_jobs_invariant() {
    for w in workload::catalog() {
        for mode in MODES {
            let m = Machine::builder().mode(mode).procs(4).budget(4_000).build();
            let bytes = record_bytes(&m, w, 2026);
            let open = || FileSource::open(&bytes[..]).expect("pristine stream decodes");
            let serial = outcome(&m, open(), 1, 8);
            assert!(
                serial.contains("det=true"),
                "{} {mode}: serial parallel-executor replay diverged: {serial}",
                w.name
            );
            for jobs in JOBS {
                let parallel = outcome(&m, open(), jobs, 8);
                assert_eq!(
                    serial, parallel,
                    "{} {mode}: jobs={jobs} broke byte-identity",
                    w.name
                );
            }
        }
    }
}

/// `MachineBuilder::replay_jobs` routes the ordinary replay entry
/// points through the parallel executor without changing any verdict.
#[test]
fn replay_jobs_builder_routes_through_the_executor() {
    let serial_m = Machine::builder().procs(4).budget(4_000).build();
    let parallel_m = {
        let mut b = Machine::builder();
        b.procs(4).budget(4_000).replay_jobs(8);
        b.build()
    };
    assert_eq!(parallel_m.replay_jobs(), 8);
    let w = workload::by_name("fft").unwrap();
    let recording = serial_m.record(w, 7);
    let via_builder = parallel_m.replay(&recording).unwrap();
    assert!(via_builder.deterministic, "{:?}", via_builder.divergence);
    let (direct, spec) = serial_m
        .replay_parallel_with(
            MemorySource::of_recording(&recording),
            &ParallelReplayOptions::with_jobs(8),
        )
        .unwrap();
    assert!(direct.deterministic);
    assert_eq!(via_builder.stats.digest, direct.stats.digest);
    assert_eq!(via_builder.stats.digest, recording.stats.digest);
    assert!(
        spec.speculative_retires + spec.serial_retires > 0,
        "the executor retired nothing"
    );
}

/// A dependence certificate that chains every commit to its predecessor
/// is trivially sound (it only ever *over*-constrains), and its hints
/// must leave the digest untouched while provably skipping some checks.
#[test]
fn chain_hints_skip_checks_without_changing_the_digest() {
    let m = Machine::builder().procs(4).budget(4_000).build();
    let w = workload::by_name("fft").unwrap();
    let recording = m.record(w, 7);
    let (serial, _) = m
        .replay_parallel_with(
            MemorySource::of_recording(&recording),
            &ParallelReplayOptions::with_jobs(1),
        )
        .unwrap();
    let n = serial.stats.total_commits;
    let edges: Vec<(u64, u64)> = (1..n).map(|s| (s, s + 1)).collect();
    let opts = ParallelReplayOptions {
        jobs: 4,
        depth: 8,
        hints: Some(DependenceHints::from_edges(n, &edges)),
    };
    let (hinted, spec) = m
        .replay_parallel_with(MemorySource::of_recording(&recording), &opts)
        .unwrap();
    assert!(hinted.deterministic, "{:?}", hinted.divergence);
    assert_eq!(hinted.stats.digest, serial.stats.digest);
    assert!(
        spec.hint_skips > 0,
        "a full-chain certificate must skip at least the first post-freeze check per round"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The headline property: for arbitrary workloads × modes × job
    /// counts × speculation depths, parallel replay of a pristine
    /// stream is byte-identical to serial replay and verifies.
    #[test]
    fn parallel_replay_is_jobs_invariant(
        spec in arb_spec(),
        seed in 0u64..1_000_000,
        mode_sel in 0u8..3,
        jobs_sel in 0usize..5,
        depth in 1u32..12,
    ) {
        let mode = MODES[mode_sel as usize];
        let m = Machine::builder().mode(mode).procs(3).budget(3_000).build();
        // The wire format encodes workloads by catalog name, so the
        // arbitrary specs replay from memory; the stream sources get
        // their coverage from the catalog and damaged-stream tests.
        let recording = m.record(&spec, seed);
        let open = || MemorySource::of_recording(&recording);
        let serial = outcome(&m, open(), 1, depth);
        prop_assert!(
            serial.contains("det=true"),
            "{mode} serial diverged: {serial}"
        );
        let parallel = outcome(&m, open(), JOBS[jobs_sel], depth);
        prop_assert_eq!(serial, parallel);
    }

    /// Corrupt and truncated streams must fail (or diverge)
    /// *identically* at every job count: same `ReplayError`, same
    /// divergence string, same partial digest — speculation never
    /// changes what a broken log reports.
    #[test]
    fn damaged_streams_report_identically_at_every_jobs(
        seed in 0u64..200,
        mode_sel in 0u8..3,
        kind in 0u8..3,
        a in 0u64..1_000_000,
        b in 1u64..256,
        jobs_sel in 1usize..5,
    ) {
        let mode = MODES[mode_sel as usize];
        let m = Machine::builder()
            .mode(mode)
            .procs(2)
            .budget(2_000)
            .chunk_size(200)
            .build();
        let pristine = record_bytes(&m, workload::by_name("fft").unwrap(), seed);
        let len = pristine.len() as u64;
        let mut damaged = pristine.clone();
        match kind {
            0 => damaged[(a % len) as usize] ^= 1 << (b % 8),
            1 => damaged.truncate((a % len) as usize),
            _ => {
                let off = (a % len) as usize;
                let end = (off + b as usize).min(damaged.len());
                for (i, byte) in damaged[off..end].iter_mut().enumerate() {
                    *byte = (a ^ b).wrapping_mul(i as u64 + 1) as u8;
                }
            }
        }
        // Streams the decoder rejects outright fail before any
        // executor runs; identity is only at stake when replay starts.
        let Ok(serial_src) = FileSource::open(&damaged[..]) else { return; };
        let serial = outcome(&m, serial_src, 1, 8);
        let parallel_src = FileSource::open(&damaged[..]).expect("decoded once, decodes again");
        let parallel = outcome(&m, parallel_src, JOBS[jobs_sel], 8);
        prop_assert_eq!(serial, parallel, "jobs={} on damaged stream", JOBS[jobs_sel]);
    }

    /// Salvaged prefixes of damaged streams, replayed through
    /// `RecoveringSource`, obey the same jobs-invariance.
    #[test]
    fn salvaged_streams_replay_identically_at_every_jobs(
        seed in 0u64..200,
        mode_sel in 0u8..3,
        cut in 0.1f64..1.0,
        jobs_sel in 1usize..5,
    ) {
        let mode = MODES[mode_sel as usize];
        let m = Machine::builder()
            .mode(mode)
            .procs(2)
            .budget(2_000)
            .chunk_size(200)
            .build();
        let pristine = record_bytes(&m, workload::by_name("fft").unwrap(), seed);
        let mut damaged = pristine.clone();
        damaged.truncate((pristine.len() as f64 * cut) as usize);
        let Ok(s) = salvage(&damaged) else { return; };
        let Some(serial_src) = RecoveringSource::prefix(&s) else { return; };
        let serial = outcome(&m, serial_src, 1, 8);
        let parallel_src =
            RecoveringSource::prefix(&s).expect("prefix existed a moment ago");
        let parallel = outcome(&m, parallel_src, JOBS[jobs_sel], 8);
        prop_assert_eq!(serial, parallel, "jobs={} on salvaged stream", JOBS[jobs_sel]);
    }
}
