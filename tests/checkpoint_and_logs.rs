//! Log sizing, stratification, checkpoints and the log-size claims of
//! Section 6.1 at integration scale.

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::{Machine, Mode, Recording};
use delorean_isa::workload;

fn record(mode: Mode, app: &str, budget: u64) -> (Machine, Recording) {
    let m = Machine::builder()
        .mode(mode)
        .procs(8)
        .budget(budget)
        .build();
    let r = m.record(workload::by_name(app).unwrap(), 77);
    (m, r)
}

#[test]
fn order_only_pi_log_size_matches_formula() {
    // Log size ~ log2(#procs + 1) bits per chunk commit: 4 bits at 8
    // processors (Table 2's formula).
    let (_, r) = record(Mode::OrderOnly, "lu", 20_000);
    let pi = r.logs.pi.measure();
    assert_eq!(pi.raw_bits, r.logs.pi.len() as u64 * 4);
    // Roughly one entry per chunk_size instructions per processor:
    // 2 bits/proc/kiloinst raw at 2000-instruction chunks.
    let bits = pi.bits_per_proc_per_kiloinst(r.total_instructions(), 8);
    assert!(
        (1.5..3.2).contains(&bits),
        "raw PI = {bits} bits/proc/kinst"
    );
}

#[test]
fn picolog_memory_ordering_log_is_tiny() {
    let (_, r) = record(Mode::PicoLog, "lu", 20_000);
    let sizes = r.memory_ordering_sizes();
    assert_eq!(sizes.pi.raw_bits, 0, "PicoLog has no PI log");
    let total = r.compressed_bits_per_proc_per_kiloinst();
    assert!(
        total < 0.5,
        "PicoLog log should be <0.5 bits/proc/kinst, got {total}"
    );
}

#[test]
fn mode_log_size_ordering_matches_table1() {
    // Order&Size > OrderOnly > PicoLog in memory-ordering log size.
    let (_, os) = record(Mode::OrderSize, "barnes", 16_000);
    let (_, oo) = record(Mode::OrderOnly, "barnes", 16_000);
    let (_, pl) = record(Mode::PicoLog, "barnes", 16_000);
    let b_os = os.compressed_bits_per_proc_per_kiloinst();
    let b_oo = oo.compressed_bits_per_proc_per_kiloinst();
    let b_pl = pl.compressed_bits_per_proc_per_kiloinst();
    assert!(
        b_os > b_oo,
        "Order&Size {b_os} should exceed OrderOnly {b_oo}"
    );
    assert!(b_oo > b_pl, "OrderOnly {b_oo} should exceed PicoLog {b_pl}");
}

#[test]
fn stratification_shrinks_the_pi_log() {
    let (_, r) = record(Mode::OrderOnly, "ocean", 20_000);
    let plain = r.logs.pi.measure().raw_bits;
    let strat1 = r.stratified_pi(1).measure().raw_bits;
    assert!(
        strat1 < plain,
        "stratified(1) = {strat1} bits should be below plain = {plain} bits"
    );
    // Stratified log covers every commit exactly once.
    assert_eq!(r.stratified_pi(3).total_chunks(), r.logs.pi.len() as u64);
}

#[test]
fn larger_chunks_shrink_the_pi_log() {
    let sizes: Vec<f64> = [1000u32, 2000, 3000]
        .iter()
        .map(|&cs| {
            let m = Machine::builder()
                .mode(Mode::OrderOnly)
                .procs(8)
                .chunk_size(cs)
                .budget(18_000)
                .build();
            let r = m.record(workload::by_name("fft").unwrap(), 5);
            r.logs
                .pi
                .measure()
                .bits_per_proc_per_kiloinst(r.total_instructions(), 8)
        })
        .collect();
    assert!(sizes[0] > sizes[1] && sizes[1] > sizes[2], "{sizes:?}");
}

#[test]
fn checkpoints_identify_compatible_replays() {
    let (_, r) = record(Mode::OrderOnly, "fmm", 6_000);
    let w = workload::by_name("fmm").unwrap();
    assert!(r.checkpoint.compatible_with(w, 8, 77));
    assert!(!r.checkpoint.compatible_with(w, 8, 78));
    assert_eq!(
        r.checkpoint.id(),
        delorean::checkpoint::SystemCheckpoint::initial(w, 8, 77).id()
    );
}

#[test]
fn gigabytes_per_day_is_consistent_with_bit_rate() {
    let (_, r) = record(Mode::PicoLog, "water-sp", 16_000);
    let bits = r.compressed_bits_per_proc_per_kiloinst();
    let gb = r.gigabytes_per_day(5.0, 1.0);
    // 1 bit/proc/kinst at 8 procs, 5 GHz, IPC 1 = 432 GB/day.
    let expected = bits * 432.0;
    assert!(
        (gb - expected).abs() < expected * 0.01 + 1e-9,
        "gb={gb} expected={expected}"
    );
}

#[test]
fn compression_never_inflates_logs() {
    for mode in Mode::all() {
        let (_, r) = record(mode, "radiosity", 10_000);
        let s = r.memory_ordering_sizes();
        assert!(s.pi.compressed_bits <= s.pi.raw_bits);
        assert!(s.cs.compressed_bits <= s.cs.raw_bits);
    }
}

#[test]
fn input_logs_measure_consistently() {
    let m = Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(4)
        .budget(12_000)
        .build();
    let r = m.record(workload::by_name("sjbb2k").unwrap(), 13);
    let io_bits: u64 = r.logs.io.iter().map(|l| l.measure().raw_bits).sum();
    let io_vals: usize = r.logs.io.iter().map(|l| l.len()).sum();
    assert!(io_bits >= io_vals as u64 * 64);
    let int_bits: u64 = r.logs.interrupts.iter().map(|l| l.measure().raw_bits).sum();
    assert_eq!(int_bits, r.stats.interrupts * 104);
}
