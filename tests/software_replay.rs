//! Cross-validation of the three replay paths — the timing engine, the
//! software inspector and serialization round trips — over the full
//! workload catalog.

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::inspect::ReplayInspector;
use delorean::{serialize, Machine, Mode};
use delorean_chunk::Committer;
use delorean_isa::workload;

#[test]
fn engine_and_software_replayers_agree_on_every_workload() {
    for w in workload::catalog() {
        let machine = Machine::builder()
            .mode(Mode::OrderOnly)
            .procs(4)
            .budget(6_000)
            .build();
        let recording = machine.record(w, 77);
        // Path 1: the event-driven timing engine.
        let engine = machine.replay(&recording).expect("shape");
        assert!(
            engine.deterministic,
            "{}: engine replay diverged: {:?}",
            w.name, engine.divergence
        );
        // Path 2: the serial software replayer (shares no code with
        // the engine).
        let software = ReplayInspector::new(&recording)
            .run_to_end()
            .expect("consistent logs");
        assert!(
            software.matches_recording,
            "{}: software replay diverged: {:?}",
            w.name, software.mismatch
        );
    }
}

#[test]
fn serialized_recordings_replay_on_both_paths() {
    for mode in Mode::all() {
        let machine = Machine::builder().mode(mode).procs(4).budget(6_000).build();
        let recording = machine.record(workload::by_name("fmm").unwrap(), 5);
        let bytes = serialize::to_bytes(&recording);
        let restored = serialize::from_bytes(&bytes).expect("round trip");
        let engine = machine.replay(&restored).expect("shape");
        assert!(engine.deterministic, "{mode}: {:?}", engine.divergence);
        let software = ReplayInspector::new(&restored)
            .run_to_end()
            .expect("consistent");
        assert!(
            software.matches_recording,
            "{mode}: {:?}",
            software.mismatch
        );
    }
}

#[test]
fn inspector_commit_stream_matches_pi_log() {
    let machine = Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(4)
        .budget(6_000)
        .build();
    let recording = machine.record(workload::by_name("cholesky").unwrap(), 9);
    let mut inspector = ReplayInspector::new(&recording);
    let mut committers = Vec::new();
    while let Some(ev) = inspector.step().expect("consistent") {
        committers.push(ev.committer);
    }
    let logged: Vec<Committer> = recording.logs.pi.iter().collect();
    assert_eq!(
        committers, logged,
        "inspector must follow the PI order exactly"
    );
}

#[test]
fn inspector_sizes_sum_to_the_budget() {
    let machine = Machine::builder()
        .mode(Mode::PicoLog)
        .procs(4)
        .budget(6_000)
        .build();
    let recording = machine.record(workload::by_name("water-ns").unwrap(), 3);
    let mut inspector = ReplayInspector::new(&recording);
    let mut per_core = [0u64; 4];
    while let Some(ev) = inspector.step().expect("consistent") {
        if let Committer::Proc(p) = ev.committer {
            per_core[p as usize] += u64::from(ev.size);
        }
    }
    assert_eq!(per_core, [6_000; 4]);
}

#[test]
fn watchpoints_see_dma_writes() {
    let machine = Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(2)
        .budget(10_000)
        .devices(delorean_chunk::DeviceConfig {
            irq_period: 0,
            dma_period: 8_000,
            dma_words: 8,
        })
        .build();
    let recording = machine.record(workload::by_name("sjbb2k").unwrap(), 21);
    assert!(recording.stats.dma_commits > 0, "need DMA for this test");
    let map = delorean_isa::layout::AddressMap::new(2);
    let mut inspector = ReplayInspector::new(&recording);
    // Watch the whole DMA buffer start.
    for off in 0..8 {
        inspector.watch(map.dma_base() + off);
    }
    let mut dma_hits = 0;
    while let Some(ev) = inspector.step().expect("consistent") {
        if ev.committer == Committer::Dma {
            dma_hits += ev.watch_hits.len();
        }
    }
    assert!(
        dma_hits > 0,
        "DMA writes to watched words must be attributed to DMA commits"
    );
}
