//! Interval recording and replay: the paper's `I(n,m)` machinery —
//! a system checkpoint taken at GCC = n, a recording interval made from
//! it, and deterministic replay of that interval.

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::inspect::ReplayInspector;
use delorean::{serialize, Machine, Mode};
use delorean_isa::workload;

fn base_machine(mode: Mode) -> Machine {
    Machine::builder()
        .mode(mode)
        .procs(4)
        .budget(10_000)
        .build()
}

#[test]
fn interval_recordings_replay_deterministically() {
    for mode in Mode::all() {
        let machine = base_machine(mode);
        let first = machine.record(workload::by_name("barnes").unwrap(), 7);
        let mid = first.stats.total_commits / 2;
        let ck = machine_checkpoint(&machine, &first, mid);
        let interval = machine.record_interval(&ck, 8_000).expect("shape matches");
        assert!(interval.interval.is_some());
        assert!(
            interval.total_instructions() > first.total_instructions(),
            "interval continues past the original budget"
        );
        let report = machine.replay(&interval).expect("shape matches");
        assert!(report.deterministic, "{mode}: {:?}", report.divergence);
    }
}

fn machine_checkpoint(
    _machine: &Machine,
    recording: &delorean::Recording,
    gcc: u64,
) -> delorean::checkpoint::IntervalCheckpoint {
    recording.checkpoint_at(gcc).expect("mid-run checkpoint")
}

#[test]
fn interval_starts_from_the_checkpointed_state() {
    let machine = base_machine(Mode::OrderOnly);
    let first = machine.record(workload::by_name("fft").unwrap(), 3);
    let gcc = first.stats.total_commits / 3;
    let ck = first.checkpoint_at(gcc).unwrap();
    assert_eq!(ck.gcc, gcc);
    // The interval recording's replay must begin exactly at the
    // checkpoint: its per-processor retired counts start at the
    // checkpoint values and end at the absolute budget.
    let interval = machine.record_interval(&ck, 5_000).unwrap();
    let budget = ck.max_retired() + 5_000;
    for &r in &interval.digest().retired {
        assert_eq!(r, budget);
    }
    // Chunk counts continue from the checkpoint's counts.
    for (done, total) in ck
        .state
        .chunks_done
        .iter()
        .zip(&interval.digest().committed_chunks)
    {
        assert!(total >= done, "chunk counts must continue, not restart");
    }
}

#[test]
fn software_replayer_handles_interval_recordings() {
    let machine = base_machine(Mode::OrderOnly);
    let first = machine.record(workload::by_name("radiosity").unwrap(), 11);
    let ck = first.checkpoint_at(first.stats.total_commits / 2).unwrap();
    let interval = machine.record_interval(&ck, 6_000).unwrap();
    let report = ReplayInspector::new(&interval)
        .run_to_end()
        .expect("consistent logs");
    assert!(report.matches_recording, "{:?}", report.mismatch);
}

#[test]
fn interval_recordings_serialize() {
    let machine = base_machine(Mode::PicoLog);
    let first = machine.record(workload::by_name("lu").unwrap(), 5);
    let ck = first.checkpoint_at(first.stats.total_commits / 2).unwrap();
    let interval = machine.record_interval(&ck, 4_000).unwrap();
    let bytes = serialize::to_bytes(&interval);
    let back = serialize::from_bytes(&bytes).expect("round trip");
    assert_eq!(back.interval, interval.interval);
    let report = machine.replay(&back).expect("shape");
    assert!(report.deterministic, "{:?}", report.divergence);
}

#[test]
fn checkpoints_are_content_addressed() {
    let machine = base_machine(Mode::OrderOnly);
    let rec = machine.record(workload::by_name("ocean").unwrap(), 9);
    let a = rec.checkpoint_at(4).unwrap();
    let b = rec.checkpoint_at(4).unwrap();
    let c = rec.checkpoint_at(8).unwrap();
    assert_eq!(a.id(), b.id());
    assert_ne!(a.id(), c.id());
    assert_eq!(a.n_procs, 4);
}

#[test]
fn checkpoint_past_the_end_is_an_error() {
    let machine = base_machine(Mode::OrderOnly);
    let rec = machine.record(workload::by_name("lu").unwrap(), 2);
    let err = rec.checkpoint_at(rec.stats.total_commits + 10).unwrap_err();
    assert!(err.to_string().contains("cannot checkpoint"), "{err}");
}

#[test]
fn interval_on_wrong_machine_shape_is_rejected() {
    let machine = base_machine(Mode::OrderOnly);
    let rec = machine.record(workload::by_name("lu").unwrap(), 2);
    let ck = rec.checkpoint_at(2).unwrap();
    let other = Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(8)
        .budget(10_000)
        .build();
    assert!(other.record_interval(&ck, 1_000).is_err());
}

#[test]
fn chained_intervals_cover_a_long_run() {
    // Record -> checkpoint -> interval -> checkpoint -> interval: the
    // paper's long-recording-period story, each piece independently
    // replayable.
    let machine = base_machine(Mode::OrderOnly);
    let w = workload::by_name("water-sp").unwrap();
    let first = machine.record(w, 13);
    let ck1 = first.checkpoint_at(first.stats.total_commits).unwrap();
    let second = machine.record_interval(&ck1, 6_000).unwrap();
    let ck2 = second.checkpoint_at(second.stats.total_commits).unwrap();
    let third = machine.record_interval(&ck2, 6_000).unwrap();
    for (i, rec) in [&first, &second, &third].into_iter().enumerate() {
        let report = machine.replay(rec).expect("shape");
        assert!(
            report.deterministic,
            "interval {i}: {:?}",
            report.divergence
        );
    }
    assert!(third.digest().retired[0] > second.digest().retired[0]);
    assert!(second.digest().retired[0] > first.digest().retired[0]);
}
