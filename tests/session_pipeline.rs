//! Pipeline-refactor safety net: recording digests and `.dlrn` bytes
//! must be byte-identical to the golden baseline captured from the
//! pre-`Session` code, for the full workload catalog × all three
//! modes, no matter how many no-op `HookStage`s are stacked on top.

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::{
    serialize, FileSink, FileSource, HookStage, Machine, Mode, NoopStage, ReplayError,
    SubstrateEvent,
};
use delorean_isa::workload;
use proptest::prelude::*;

const MODES: [Mode; 3] = [Mode::OrderSize, Mode::OrderOnly, Mode::PicoLog];
const GOLDEN: &str = include_str!("golden/session_digests.txt");
const PROCS: u32 = 4;
const BUDGET: u64 = 6_000;
const SEED: u64 = 2026;

fn machine(mode: Mode) -> Machine {
    Machine::builder()
        .mode(mode)
        .procs(PROCS)
        .budget(BUDGET)
        .build()
}

/// FNV-1a, the same checksum family the wire format uses; good enough
/// to pin a byte stream in a golden file.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable fingerprint of a `StateDigest`: folds every field through
/// FNV so the golden file stays one value per line.
fn digest_fingerprint(d: &delorean::StateDigest) -> u64 {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&d.mem_hash.to_le_bytes());
    for part in [&d.stream_hashes, &d.retired, &d.committed_chunks] {
        bytes.extend_from_slice(&(part.len() as u64).to_le_bytes());
        for v in part {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    fnv64(&bytes)
}

fn mode_tag(mode: Mode) -> &'static str {
    match mode {
        Mode::OrderSize => "ordersize",
        Mode::OrderOnly => "orderonly",
        Mode::PicoLog => "picolog",
    }
}

/// One golden line per (workload, mode): digest fingerprint, stream
/// byte hash, stream length.
fn current_line(workload: &str, mode: Mode) -> String {
    let m = machine(mode);
    let w = workload::by_name(workload).expect("catalog workload");
    let recording = m.record(w, SEED);
    let mut sink = FileSink::new(Vec::new());
    m.record_to(w, SEED, &mut sink);
    let bytes = sink.into_inner().expect("writing to a Vec cannot fail");
    format!(
        "{workload} {} {:016x} {:016x} {}",
        mode_tag(mode),
        digest_fingerprint(&recording.stats.digest),
        fnv64(&bytes),
        bytes.len()
    )
}

/// Acceptance: the refactor onto the `Session` pipeline left every
/// recording digest and every `.dlrn` byte stream identical to the
/// baseline captured before the refactor. Regenerate (only when the
/// recording format intentionally changes) with
/// `DELOREAN_REGEN_GOLDEN=1 cargo test -q golden_catalog` and commit
/// the printed lines to `tests/golden/session_digests.txt`.
#[test]
fn golden_catalog_digests_and_bytes_are_stable() {
    let mut fresh = Vec::new();
    for w in workload::catalog() {
        for mode in MODES {
            fresh.push(current_line(w.name, mode));
        }
    }
    let fresh = fresh.join("\n") + "\n";
    if std::env::var("DELOREAN_REGEN_GOLDEN").is_ok() {
        println!("{fresh}");
        // Tests run with the package root (crates/core) as cwd.
        std::fs::write("../../tests/golden/session_digests.txt", &fresh).expect("write golden");
        return;
    }
    assert_eq!(
        GOLDEN, fresh,
        "recording output drifted from the pre-refactor golden baseline"
    );
}

/// The golden line for one (workload, mode), as committed.
fn golden_line(workload: &str, mode: Mode) -> &'static str {
    let key = format!("{workload} {} ", mode_tag(mode));
    GOLDEN
        .lines()
        .find(|l| l.starts_with(&key))
        .expect("every catalog (workload, mode) has a golden line")
}

/// A stage that reads everything and changes nothing: observation-only
/// like [`NoopStage`], but a distinct type so stacks mix stage kinds.
#[derive(Default)]
struct PassiveProbe {
    events: u64,
    insts: u64,
}

impl HookStage for PassiveProbe {
    fn name(&self) -> &'static str {
        "probe"
    }
    fn on_event(&mut self, _time: u64, ev: &SubstrateEvent) {
        self.events += 1;
        if let SubstrateEvent::Commit { size, .. } = ev {
            self.insts += u64::from(*size);
        }
    }
}

/// Builds a session with the stage stack `stack` describes: `0` picks
/// the next `NoopStage`, anything else the next `PassiveProbe`, so the
/// stack order doubles as a permutation of stage kinds.
fn stacked_session<'m, 's>(
    m: &'m Machine,
    stack: &[u8],
    noops: &'s mut [NoopStage],
    probes: &'s mut [PassiveProbe],
) -> delorean::Session<'m, 's> {
    let mut session = m.session();
    let mut ni = noops.iter_mut();
    let mut pi = probes.iter_mut();
    for &kind in stack {
        session = if kind == 0 {
            session.with_stage(ni.next().expect("enough noops"))
        } else {
            session.with_stage(pi.next().expect("enough probes"))
        };
    }
    session
}

/// Records (workload, mode) with an arbitrary stack of no-op stages
/// and returns the same fingerprint line as [`current_line`].
fn line_with_stages(workload: &str, mode: Mode, stack: &[u8]) -> String {
    let m = machine(mode);
    let w = workload::by_name(workload).expect("catalog workload");
    let mut noops: Vec<NoopStage> = stack.iter().map(|_| NoopStage).collect();
    let mut probes: Vec<PassiveProbe> = stack.iter().map(|_| PassiveProbe::default()).collect();
    let recording = stacked_session(&m, stack, &mut noops, &mut probes).record(w, SEED);
    let mut noops: Vec<NoopStage> = stack.iter().map(|_| NoopStage).collect();
    let mut probes: Vec<PassiveProbe> = stack.iter().map(|_| PassiveProbe::default()).collect();
    let mut sink = FileSink::new(Vec::new());
    stacked_session(&m, stack, &mut noops, &mut probes).record_to(w, SEED, &mut sink);
    let bytes = sink.into_inner().expect("writing to a Vec cannot fail");
    format!(
        "{workload} {} {:016x} {:016x} {}",
        mode_tag(mode),
        digest_fingerprint(&recording.stats.digest),
        fnv64(&bytes),
        bytes.len()
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Satellite: the component scheduler behind the engine produces
    /// byte-identical digests and `.dlrn` bytes to the pre-refactor
    /// golden baseline, and its heap tie-breaks are stable across
    /// runs — two recordings of the same point must fingerprint
    /// identically.
    #[test]
    fn component_scheduler_matches_golden_baseline(
        widx in 0usize..13,
        mode_sel in 0usize..3,
    ) {
        let w = workload::catalog()[widx];
        let mode = MODES[mode_sel];
        let once = current_line(w.name, mode);
        let again = current_line(w.name, mode);
        prop_assert_eq!(
            &once, &again,
            "scheduler tie-breaks drifted between two identical runs"
        );
        prop_assert_eq!(
            once.as_str(), golden_line(w.name, mode),
            "the component scheduler perturbed the recording"
        );
    }

    /// Satellite: any permutation and stacking of observation-only
    /// `HookStage`s leaves the recording digest and the `.dlrn` byte
    /// stream identical to the pre-refactor golden baseline.
    #[test]
    fn noop_stage_stacks_are_invisible(
        widx in 0usize..13,
        mode_sel in 0usize..3,
        stack in proptest::collection::vec(0u8..2, 0..5),
    ) {
        let w = workload::catalog()[widx];
        let mode = MODES[mode_sel];
        prop_assert_eq!(
            line_with_stages(w.name, mode, &stack),
            golden_line(w.name, mode),
            "a stack of {} no-op stages perturbed the recording",
            stack.len()
        );
    }
}

/// Satellite: both replay entry points — the in-memory
/// `replay_with_seed` and the streaming `replay_from_with_seed` —
/// funnel through one digest-verification body, so a recording whose
/// digest no longer matches its execution yields the *identical*
/// verdict from either path, and a machine-shape mismatch yields the
/// identical `ReplayError`.
#[test]
fn replay_paths_share_one_digest_verdict() {
    let m = machine(Mode::OrderOnly);
    let w = workload::by_name("fft").expect("catalog workload");
    let mut tampered = m.record(w, SEED);
    tampered.stats.digest.mem_hash ^= 0xdead_beef;

    let in_memory = m
        .replay_with_seed(&tampered, 99)
        .expect("shape matches, replay runs");
    let bytes = serialize::to_bytes(&tampered);
    let streamed = m
        .replay_from_with_seed(
            FileSource::open(&bytes[..]).expect("serialized recording decodes"),
            99,
        )
        .expect("shape matches, replay runs");

    assert!(!in_memory.deterministic);
    assert!(!streamed.deterministic);
    assert_eq!(
        in_memory.divergence, streamed.divergence,
        "the two replay paths no longer share the digest-verification body"
    );
    assert_eq!(
        in_memory.divergence.as_deref(),
        Some("final memory contents differ")
    );

    // A shape mismatch must also produce the identical error either way.
    let wrong = Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(PROCS + 1)
        .budget(BUDGET)
        .build();
    let a = wrong.replay_with_seed(&tampered, 99).unwrap_err();
    let b = wrong
        .replay_from_with_seed(FileSource::open(&bytes[..]).expect("decodes"), 99)
        .unwrap_err();
    assert_eq!(a, b);
    assert!(matches!(a, ReplayError::MachineMismatch { .. }));
}
