//! Property-based tests over the core invariants.

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean::inspect::ReplayInspector;
use delorean::{serialize, Machine, Mode};
use delorean_baselines::{verify_log_covers, DependenceTracker, FdrRecorder};
use delorean_isa::workload::{WorkloadKind, WorkloadSpec};
use delorean_mem::Signature;
use delorean_sim::{AccessRecord, AccessSink};
use proptest::prelude::*;

/// Random but valid workload specs.
fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        0.2..0.5f64,                          // mem_frac
        0.1..0.6f64,                          // shared_frac
        0.1..0.7f64,                          // write_frac
        0.0..0.2f64,                          // hot_frac
        0.0..0.8f64,                          // cross_frac
        0.0..0.9f64,                          // irregular
        prop_oneof![Just(0u32), 200..800u32], // lock_every
        prop_oneof![Just(0u32), 2..6u32],     // barrier_every_iters
        prop_oneof![Just(0u32), 300..900u32], // io_every
    )
        .prop_map(
            |(mem, sh, wr, hot, cross, irr, lock, bar, io)| WorkloadSpec {
                name: "prop",
                kind: if io > 0 {
                    WorkloadKind::Commercial
                } else {
                    WorkloadKind::Splash
                },
                mem_frac: mem,
                shared_frac: sh,
                write_frac: wr,
                hot_frac: hot,
                hot_words: 32,
                shared_span: 4096,
                cross_frac: cross,
                private_span: 2048,
                irregular: irr,
                lock_every: lock,
                lock_count: 16,
                lock_skew: 0.3,
                crit_len: 9,
                barrier_every_iters: bar,
                io_every: io,
                sys_every: if io > 0 { io * 2 } else { 0 },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The headline property: any recording replays deterministically
    /// under different machine timing, in every mode.
    #[test]
    fn replay_is_deterministic(
        spec in arb_spec(),
        seed in 0u64..1_000_000,
        mode_sel in 0u8..3,
        replay_seed in 0u64..1_000_000,
    ) {
        let mode = [Mode::OrderSize, Mode::OrderOnly, Mode::PicoLog][mode_sel as usize];
        let m = Machine::builder()
            .mode(mode)
            .procs(3)
            .budget(4_000)
            .timing_seed(seed ^ 0xabcd)
            .build();
        let recording = m.record(&spec, seed);
        let report = m.replay_with_seed(&recording, replay_seed).unwrap();
        prop_assert!(
            report.deterministic,
            "{mode} diverged: {:?}",
            report.divergence
        );
    }

    /// FDR's transitive reduction never loses a dependence, for any
    /// access stream.
    #[test]
    fn fdr_reduction_sound(ops in proptest::collection::vec(
        (0u32..3, 1u64..4, 0u64..12, proptest::bool::ANY), 1..400))
    {
        let mut icounts = [0u64; 3];
        let mut tracker = DependenceTracker::new();
        let mut fdr = FdrRecorder::new(3);
        let mut all = Vec::new();
        for (proc, stride, line, write) in ops {
            icounts[proc as usize] += stride;
            let rec = AccessRecord { proc, icount: icounts[proc as usize], line, write };
            all.extend(tracker.observe(&rec));
            fdr.record(rec);
        }
        let log = fdr.finish();
        prop_assert_eq!(verify_log_covers(3, log.entries(), &all), None);
    }

    /// Signatures never report false negatives.
    #[test]
    fn signature_no_false_negatives(lines in proptest::collection::vec(0u64..u64::MAX, 0..300)) {
        let mut sig = Signature::new();
        for &l in &lines {
            sig.insert(l);
        }
        for &l in &lines {
            prop_assert!(sig.may_contain(l));
        }
    }

    /// LZ77 round-trips arbitrary byte streams.
    #[test]
    fn lz77_round_trip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let packed = delorean_compress::lz77::compress(&data);
        prop_assert_eq!(delorean_compress::lz77::decompress(&packed).unwrap(), data);
    }

    /// Bit-stream round trip for arbitrary width/value sequences.
    #[test]
    fn bitstream_round_trip(items in proptest::collection::vec((1u32..=64, any::<u64>()), 0..200)) {
        let mut w = delorean_compress::BitWriter::new();
        let masked: Vec<(u32, u64)> = items
            .iter()
            .map(|&(width, v)| (width, if width == 64 { v } else { v & ((1u64 << width) - 1) }))
            .collect();
        for &(width, v) in &masked {
            w.write_bits(v, width);
        }
        let bytes = w.into_bytes();
        let mut r = delorean_compress::BitReader::new(&bytes);
        for &(width, v) in &masked {
            prop_assert_eq!(r.read_bits(width), Some(v));
        }
    }

    /// The independent software replayer agrees with the recording for
    /// arbitrary workloads and modes (two implementations, one
    /// semantics).
    #[test]
    fn software_replayer_agrees(
        spec in arb_spec(),
        seed in 0u64..1_000_000,
        mode_sel in 0u8..3,
    ) {
        let mode = [Mode::OrderSize, Mode::OrderOnly, Mode::PicoLog][mode_sel as usize];
        let m = Machine::builder().mode(mode).procs(3).budget(3_000).build();
        let recording = m.record(&spec, seed);
        let report = ReplayInspector::new(&recording).run_to_end().unwrap();
        prop_assert!(report.matches_recording, "{mode}: {:?}", report.mismatch);
    }

    /// The deserializer never panics on arbitrary bytes — it returns
    /// an error instead (robustness against corrupt or hostile logs).
    #[test]
    fn deserializer_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = serialize::from_bytes(&bytes);
    }

    /// Bit flips anywhere in a valid recording are always *detected*
    /// (checksum) or produce a decodable-but-checked structure — never
    /// a panic.
    #[test]
    fn bitflips_are_detected(seed in 0u64..10_000, pos_frac in 0.0f64..1.0) {
        let m = Machine::builder().mode(Mode::OrderOnly).procs(2).budget(2_000).build();
        let rec = m.record(&WorkloadSpec::test_spec(), seed);
        let mut bytes = serialize::to_bytes(&rec);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 0x40;
        if serialize::from_bytes(&bytes).is_ok() {
            prop_assert!(pos < 14, "flips past the frame header must be caught");
        }
    }

    /// Stratified PI logs conserve chunks and never split a
    /// processor's program order.
    #[test]
    fn stratification_conserves_chunks(
        seed in 0u64..100_000,
        max in 1u32..8,
    ) {
        let m = Machine::builder().mode(Mode::OrderOnly).procs(4).budget(4_000).build();
        let spec = WorkloadSpec::test_spec();
        let recording = m.record(&spec, seed);
        let strat = recording.stratified_pi(max);
        prop_assert_eq!(strat.total_chunks(), recording.logs.pi.len() as u64);
        for s in strat.strata() {
            for &c in s {
                prop_assert!(c <= max);
            }
        }
    }
}
