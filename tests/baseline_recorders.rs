//! The FDR / RTR / Strata baselines over real SC executions, and the
//! cross-scheme log-size relationships of Section 6.1.

// Test code may panic freely.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use delorean_baselines::{
    run_baseline, verify_log_covers, DependenceTracker, FdrRecorder, RtrRecorder, StrataRecorder,
};
use delorean_isa::workload;
use delorean_sim::{AccessRecord, AccessSink, RunSpec};

// Program-generation seed for these tests. The catalog's conflict knobs
// (hot/cross fractions) are small enough that a program's conflicting
// sites are a per-seed draw; this seed yields cross-processor
// dependences on every app the assertions below sample.
const APP_SEED: u64 = 7;

fn spec(app: &str, procs: u32, budget: u64) -> RunSpec {
    RunSpec::new(*workload::by_name(app).unwrap(), procs, APP_SEED, budget).unwrap()
}

/// Collects both the full dependence set and all three baseline logs in
/// one SC run.
struct Everything {
    tracker: DependenceTracker,
    all: Vec<delorean_baselines::Dependence>,
    fdr: FdrRecorder,
    rtr: RtrRecorder,
    strata: StrataRecorder,
}

impl AccessSink for Everything {
    fn record(&mut self, rec: AccessRecord) {
        self.all.extend(self.tracker.observe(&rec));
        self.fdr.record(rec);
        self.rtr.record(rec);
        self.strata.record(rec);
    }
}

#[test]
fn fdr_reduction_is_sound_on_real_workloads() {
    for app in ["barnes", "radix", "raytrace"] {
        let mut sink = Everything {
            tracker: DependenceTracker::new(),
            all: Vec::new(),
            fdr: FdrRecorder::new(4),
            rtr: RtrRecorder::new(4),
            strata: StrataRecorder::new(4, true),
        };
        run_baseline(&spec(app, 4, 30_000), &mut sink);
        let log = sink.fdr.finish();
        assert!(!sink.all.is_empty(), "{app}: no dependences observed");
        assert!(
            log.len() as u64 <= log.total_dependences(),
            "{app}: reduction added entries"
        );
        assert_eq!(
            verify_log_covers(4, log.entries(), &sink.all),
            None,
            "{app}: reduced log lost a dependence"
        );
    }
}

#[test]
fn rtr_logs_no_more_entries_than_fdr() {
    let mut sink = Everything {
        tracker: DependenceTracker::new(),
        all: Vec::new(),
        fdr: FdrRecorder::new(8),
        rtr: RtrRecorder::new(8),
        strata: StrataRecorder::new(8, true),
    };
    run_baseline(&spec("radix", 8, 30_000), &mut sink);
    let fdr = sink.fdr.finish();
    let rtr = sink.rtr.finish();
    assert!(
        !fdr.is_empty(),
        "need dependences for the comparison to mean anything"
    );
    assert!(
        rtr.len() <= fdr.len(),
        "RTR {} vs FDR {}",
        rtr.len(),
        fdr.len()
    );
}

#[test]
fn rtr_compresses_better_on_recurring_dependences() {
    // RTR's published win comes from recurring (e.g. producer/consumer
    // strided) dependences, which regulation + vector compaction
    // collapse; on such a stream its encoded size must clearly beat
    // FDR's.
    use delorean_sim::AccessRecord;
    let mut fdr = FdrRecorder::new(2);
    let mut rtr = RtrRecorder::new(2);
    for i in 0..500u64 {
        for r in [
            AccessRecord {
                proc: 0,
                icount: 1_000 + i * 64,
                line: i,
                write: true,
            },
            AccessRecord {
                proc: 1,
                icount: 2_000 + i * 64,
                line: i,
                write: false,
            },
        ] {
            fdr.record(r);
            rtr.record(r);
        }
    }
    let fdr_bits = fdr.finish().measure().compressed_bits;
    let rtr_bits = rtr.finish().measure().compressed_bits;
    assert!(
        rtr_bits * 2 <= fdr_bits,
        "RTR ({rtr_bits}) should be well below FDR ({fdr_bits}) on strided streams"
    );
}

#[test]
fn strata_log_counts_all_references() {
    let mut strata = StrataRecorder::new(4, true);
    let result = run_baseline(&spec("fft", 4, 8_000), &mut strata);
    let log = strata.finish();
    assert_eq!(log.total_references(), result.mem_ops);
    // Sum of all counters equals total references.
    let counted: u64 = log.strata().iter().flatten().sum();
    assert_eq!(counted, result.mem_ops);
}

#[test]
fn delorean_beats_measured_baselines_on_log_size() {
    // The headline claim at integration scale: OrderOnly's compressed
    // memory-ordering log is far below FDR's and RTR's on the same
    // workload (our own measured baselines, not just the published
    // numbers).
    use delorean::{Machine, Mode};
    let budget = 30_000u64;
    let machine = Machine::builder()
        .mode(Mode::OrderOnly)
        .procs(8)
        .budget(budget)
        .build();
    let recording = machine.record(workload::by_name("barnes").unwrap(), APP_SEED);
    let delorean_bits = recording.compressed_bits_per_proc_per_kiloinst();

    let mut fdr = FdrRecorder::new(8);
    let result = run_baseline(&spec("barnes", 8, budget), &mut fdr);
    let total_insts: u64 = result.retired.iter().sum();
    let fdr_bits = fdr
        .finish()
        .measure()
        .compressed_bits_per_proc_per_kiloinst(total_insts, 8);
    assert!(
        delorean_bits < fdr_bits / 2.0,
        "OrderOnly ({delorean_bits:.2}) should be well below FDR ({fdr_bits:.2})"
    );
}

#[test]
fn baseline_runs_are_deterministic() {
    let mut a = StrataRecorder::new(4, false);
    let mut b = StrataRecorder::new(4, false);
    run_baseline(&spec("ocean", 4, 5_000), &mut a);
    run_baseline(&spec("ocean", 4, 5_000), &mut b);
    assert_eq!(a.finish(), b.finish());
}
