//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the criterion API its benches use: `Criterion`,
//! `benchmark_group`/`bench_function`, `Throughput`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is a simple warmup + timed-sample loop printing mean
//! time per iteration (and derived throughput when declared). It has no
//! outlier analysis or HTML reports — good enough to compare orders of
//! magnitude and track regressions by eye or script.

use std::time::{Duration, Instant};

/// Declared work per measured iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(self.sample_size, id, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput basis.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the harness-level sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(self.criterion.sample_size, &full, self.throughput, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine it is given.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    samples: usize,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate the per-sample iteration count so one sample takes
    // roughly 10ms, then take the timed samples.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("benchmark time is finite"));
    let median = per_iter[per_iter.len() / 2];
    let best = per_iter[0];

    let mut line = format!(
        "{id:<40} median {:>12}  best {:>12}",
        fmt_time(median),
        fmt_time(best)
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!("  {:>12.3} Melem/s", n as f64 / median / 1e6));
        }
        Some(Throughput::Bytes(n)) => {
            line.push_str(&format!(
                "  {:>12.3} MiB/s",
                n as f64 / median / (1024.0 * 1024.0)
            ));
        }
        None => {}
    }
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group: a config expression plus target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
        c.bench_function("free", |b| b.iter(|| 1 + 1));
    }
}
