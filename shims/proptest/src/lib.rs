//! Minimal, deterministic stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the proptest API its test suites use: the `proptest!`
//! macro, `Strategy` with `prop_map`, ranges and tuples as strategies,
//! `Just`, `prop_oneof!`, `collection::vec`, `bool::ANY`, `any::<T>()`,
//! and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case panics with the values bound by
//!   the test body's assertions; there is no minimization pass.
//! - **Deterministic cases.** Each test derives its case stream from a
//!   hash of the test name and the case index, so runs are reproducible
//!   without a persistence file.

use core::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Run configuration — only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for API parity with the real crate; the shim does
        /// not shrink failing inputs.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 16,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Case stream keyed by the test name and case index so distinct
        /// tests see distinct values while staying reproducible.
        pub fn for_case_named(name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Unit-interval draw with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A generator of values, mirroring `proptest::strategy::Strategy`.
    pub trait Strategy {
        type Value;

        /// Generates one value for the current case.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy for heterogeneous collections.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over the full domain of `A`.
    pub struct AnyStrategy<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy for vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `element` with a length
    /// in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy over both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// `proptest::bool::ANY`.
    pub const ANY: BoolAny = BoolAny;
}

/// Range strategies are implemented directly on `Range`/`RangeInclusive`;
/// re-export the ops types for macro hygiene.
#[doc(hidden)]
pub mod __rt {
    pub use core::ops::{Range, RangeInclusive};
}

// Silence unused-import warnings for the top-level re-imports used only
// in doc examples.
#[allow(unused_imports)]
use strategy::Strategy as _;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// The main harness macro: expands each embedded `fn` into a `#[test]`
/// that generates `config.cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..u64::from(__config.cases) {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case_named(stringify!($name), __case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assertion macro; without shrinking this is `assert!` with a case tag.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion macro.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[allow(unused_imports)]
pub use prelude::*;

// Keep the top-level `use` of ranges meaningful for rustdoc.
#[allow(dead_code)]
fn _doc_anchor(_: Range<u8>, _: RangeInclusive<u8>) {}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn tuples_and_ranges(v in (0u32..10, 5u64..=6, 0.0..1.0f64), flag in crate::bool::ANY) {
            prop_assert!(v.0 < 10);
            prop_assert!(v.1 == 5 || v.1 == 6);
            prop_assert!((0.0..1.0).contains(&v.2));
            let _ = flag;
        }

        #[test]
        fn oneof_and_collections(
            choice in prop_oneof![Just(0u32), 200..800u32],
            data in crate::collection::vec(any::<u8>(), 0..32),
        ) {
            prop_assert!(choice == 0 || (200..800).contains(&choice));
            prop_assert!(data.len() < 32);
        }
    }

    #[test]
    fn mapped_strategy() {
        let s = (0u32..4).prop_map(|x| x * 2);
        let mut rng = crate::test_runner::TestRng::for_case_named("mapped", 0);
        for _ in 0..32 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 8);
        }
    }
}
