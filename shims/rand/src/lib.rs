//! Minimal, deterministic stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of the `rand 0.8` API it actually uses: `SmallRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` convenience methods
//! `gen`, `gen_bool` and `gen_range` over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction `rand 0.8`'s 64-bit `SmallRng` uses — so statistical
//! quality is comparable. Exact numeric streams are not guaranteed to
//! match the upstream crate; nothing in this workspace depends on them
//! (all tests assert determinism and self-consistency, not specific
//! values).

use core::ops::{Range, RangeInclusive};

/// Core entropy source: yields raw 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word from the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`], mirroring the `Standard`
/// distribution for the primitive types this workspace draws.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps a raw word to the unit interval [0, 1) with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range sampling, mirroring `rand`'s `SampleRange`.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the full-width distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream rand seeds xoshiro.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u32..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
